package resilience

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"harpte/internal/core"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/tunnels"
)

func tinyConfig() core.Config {
	return core.Config{
		EmbedDim: 8, GNNLayers: 2, GNNHidden: 4,
		SetTransLayers: 1, Heads: 2, FFDim: 16,
		MLP1Hidden: 8, RAUHidden: 12, RAUIterations: 3,
		LossTemp: 0.05, Seed: 7,
	}
}

// twoPathProblem: 0→1 via a 10G direct link or a 5G two-hop detour.
func twoPathProblem() *te.Problem {
	g := topology.New("twopath", 3)
	g.AddBidirectional(0, 1, 10)
	g.AddBidirectional(0, 2, 5)
	g.AddBidirectional(2, 1, 5)
	g.EdgeNodes = []int{0, 1}
	return te.NewProblem(g, tunnels.Compute(g, 2))
}

func demand(p *te.Problem, vals ...float64) *tensor.Dense {
	d := tensor.New(p.NumFlows(), 1)
	copy(d.Data, vals)
	return d
}

func assertValidSplits(t *testing.T, p *te.Problem, s *tensor.Dense) {
	t.Helper()
	if s == nil {
		t.Fatal("nil splits")
	}
	if s.Rows != p.NumFlows() || s.Cols != p.Tunnels.K {
		t.Fatalf("splits shape %dx%d, want %dx%d", s.Rows, s.Cols, p.NumFlows(), p.Tunnels.K)
	}
	for f := 0; f < s.Rows; f++ {
		var sum float64
		for _, v := range s.Row(f) {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("flow %d has invalid split %v", f, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("flow %d splits sum to %v", f, sum)
		}
	}
}

func TestServeHealthyModelUsesFullTier(t *testing.T) {
	p := twoPathProblem()
	srv := NewServer(core.New(tinyConfig()), Options{})
	dec := srv.Serve(p, demand(p, 4, 2))
	if dec.Tier != TierFull {
		t.Fatalf("tier %v (degraded: %v), want full", dec.Tier, dec.Degraded)
	}
	assertValidSplits(t, p, dec.Splits)
	if got := srv.TierCounts()[TierFull]; got != 1 {
		t.Fatalf("full-tier count %d, want 1", got)
	}
}

func TestServeRejectsMalformedInput(t *testing.T) {
	p := twoPathProblem()
	srv := NewServer(core.New(tinyConfig()), Options{})
	cases := []struct {
		name string
		p    *te.Problem
		d    *tensor.Dense
	}{
		{"nil problem", nil, demand(p, 1, 1)},
		{"nil demand", p, nil},
		{"short demand", p, tensor.New(p.NumFlows()-1, 1)},
		{"long demand", p, tensor.New(p.NumFlows()+3, 1)},
		{"NaN demand", p, demand(p, math.NaN(), 1)},
		{"Inf demand", p, demand(p, math.Inf(1), 1)},
		{"negative demand", p, demand(p, -4, 1)},
	}
	for _, tc := range cases {
		dec := srv.Serve(tc.p, tc.d)
		if dec.Tier != TierRejected {
			t.Fatalf("%s: tier %v, want rejected", tc.name, dec.Tier)
		}
		if !errors.Is(dec.Err, ErrInvalidInput) {
			t.Fatalf("%s: err %v does not wrap ErrInvalidInput", tc.name, dec.Err)
		}
		if dec.Splits != nil {
			t.Fatalf("%s: rejected request still produced splits", tc.name)
		}
	}
	if got := srv.TierCounts()[TierRejected]; got != int64(len(cases)) {
		t.Fatalf("rejected count %d, want %d", got, len(cases))
	}
}

func TestValidateInputTunnelEdgeOutOfRange(t *testing.T) {
	g := topology.New("bad", 2)
	g.AddBidirectional(0, 1, 10)
	set := &tunnels.Set{
		Flows:   []tunnels.Flow{{Src: 0, Dst: 1}},
		PerFlow: [][]tunnels.Tunnel{{{Edges: []int{99}}}},
		K:       1,
	}
	p := &te.Problem{Graph: g, Tunnels: set}
	if err := ValidateInput(p, tensor.New(1, 1)); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("out-of-range tunnel edge: %v", err)
	}
}

// TestServePoisonedModelFallsBackToECMP: NaN weights make both neural
// tiers emit NaN splits; the guarded path must detect that and serve valid
// ECMP splits instead — the request is never answered with garbage.
func TestServePoisonedModelFallsBackToECMP(t *testing.T) {
	p := twoPathProblem()
	m := core.New(tinyConfig())
	m.Params()[0].Val.Data[0] = math.NaN()
	srv := NewServer(m, Options{})
	dec := srv.Serve(p, demand(p, 4, 2))
	if dec.Tier != TierECMP {
		t.Fatalf("tier %v, want ecmp (degraded: %v)", dec.Tier, dec.Degraded)
	}
	if len(dec.Degraded) != 2 {
		t.Fatalf("expected both neural tiers degraded, got %v", dec.Degraded)
	}
	assertValidSplits(t, p, dec.Splits)
}

// TestServeDeadTunnelTopology: with the direct link failed and the model
// poisoned, the ECMP tier must still route around the dead tunnels.
func TestServeDeadTunnelTopology(t *testing.T) {
	g := topology.New("deadpath", 3)
	g.AddBidirectional(0, 1, 10)
	g.AddBidirectional(0, 2, 5)
	g.AddBidirectional(2, 1, 5)
	g.EdgeNodes = []int{0, 1}
	g = g.WithFailedLink(0, 1) // direct tunnel dies, detour survives
	p := te.NewProblem(g, tunnels.Compute(g, 2))

	m := core.New(tinyConfig())
	m.Params()[0].Val.Data[0] = math.NaN()
	srv := NewServer(m, Options{})
	dec := srv.Serve(p, demand(p, 4, 2))
	if dec.Tier != TierECMP {
		t.Fatalf("tier %v, want ecmp", dec.Tier)
	}
	assertValidSplits(t, p, dec.Splits)
	// No weight may remain on tunnels crossing the failed link.
	for f := 0; f < p.NumFlows(); f++ {
		for k := 0; k < p.Tunnels.K; k++ {
			if dec.Splits.At(f, k) > 0 && !te.TunnelAlive(g, p.Tunnels.Tunnel(f, k)) {
				t.Fatalf("flow %d sends %v down a dead tunnel", f, dec.Splits.At(f, k))
			}
		}
	}
}

func TestServeDeadlineDegradesToECMP(t *testing.T) {
	p := twoPathProblem()
	srv := NewServer(core.New(tinyConfig()), Options{Deadline: time.Nanosecond})
	dec := srv.Serve(p, demand(p, 4, 2))
	if dec.Tier != TierECMP {
		t.Fatalf("tier %v, want ecmp under an impossible deadline", dec.Tier)
	}
	assertValidSplits(t, p, dec.Splits)
	if len(dec.Degraded) == 0 || !strings.Contains(dec.Degraded[0], "deadline") {
		t.Fatalf("degradation reasons missing deadline: %v", dec.Degraded)
	}
}

// TestServeRecoversFromPanic: a Problem assembled without NewProblem has a
// nil incidence operator, which makes the model's forward pass panic. The
// guarded path must convert that panic into a degradation and still serve.
func TestServeRecoversFromPanic(t *testing.T) {
	healthy := twoPathProblem()
	broken := &te.Problem{Graph: healthy.Graph, Tunnels: healthy.Tunnels}
	srv := NewServer(core.New(tinyConfig()), Options{})
	dec := srv.Serve(broken, demand(broken, 4, 2))
	if dec.Tier != TierECMP {
		t.Fatalf("tier %v, want ecmp after inference panic (degraded: %v)", dec.Tier, dec.Degraded)
	}
	assertValidSplits(t, broken, dec.Splits)
	found := false
	for _, d := range dec.Degraded {
		if strings.Contains(d, "panic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no panic recorded in degradation reasons: %v", dec.Degraded)
	}
}

func TestReducedTierServesWhenFullTierSlow(t *testing.T) {
	// Sanity-check the reduced model exists and produces valid output on
	// its own (the tier between full and ECMP).
	p := twoPathProblem()
	m := core.New(tinyConfig())
	reduced := m.WithRAUIterations(1)
	splits := reduced.Splits(reduced.Context(p), demand(p, 4, 2))
	assertValidSplits(t, p, splits)
}

func TestContextCacheReuse(t *testing.T) {
	p := twoPathProblem()
	srv := NewServer(core.New(tinyConfig()), Options{})
	d := demand(p, 4, 2)
	for i := 0; i < 3; i++ {
		if dec := srv.Serve(p, d); dec.Tier != TierFull {
			t.Fatalf("request %d: tier %v", i, dec.Tier)
		}
	}
	if got := srv.TierCounts()[TierFull]; got != 3 {
		t.Fatalf("full count %d, want 3", got)
	}
}
