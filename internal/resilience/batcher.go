package resilience

// Micro-batching for the TierFull serving path. Concurrent requests that
// share a model generation and context (i.e. the same topology) are
// coalesced into one core.SplitsBatch call, which computes the
// topology-dependent GNN and set-transformer embeddings once for the whole
// batch. A batch dispatches when it reaches Options.BatchMaxSize or when
// Options.BatchMaxLinger elapses after its first request, whichever comes
// first — bounded batching, never unbounded queueing.
//
// Deadline and shed semantics are preserved per request: each waiter blocks
// on its own buffered channel under its own remaining budget, exactly like
// safeInfer, and a waiter that times out simply abandons its slot (the
// dispatch later completes into the buffered channel and the result is
// discarded). A panic inside the batched inference is recovered once and
// broadcast to every member as an error, so one poisoned batch degrades its
// members to the reduced tier instead of wedging them.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harpte/internal/core"
	"harpte/internal/obs/reqtrace"
	"harpte/internal/te"
	"harpte/internal/tensor"
)

// DefaultBatchLinger is the dispatch deadline for an unfilled batch when
// Options.BatchMaxLinger is unset.
const DefaultBatchLinger = 2 * time.Millisecond

// batchKey identifies requests that may share one SplitsBatch call: same
// weights, same immutable topology context.
type batchKey struct {
	m   *core.Model
	ctx *core.Context
}

type batchResult struct {
	splits *tensor.Dense
	err    error
}

type batchWaiter struct {
	p      *te.Problem
	demand *tensor.Dense
	ch     chan batchResult
	sp     *reqtrace.Span // the member's tier span; nil when untraced
}

type pendingBatch struct {
	key     batchKey
	waiters []batchWaiter
	timer   *time.Timer
	fired   bool // detached from pending; the timer callback must not re-fire it
}

// batcher is the bounded batch collector. One per Server, created only
// when Options.BatchMaxSize > 1. Telemetry is read through the owning
// server at call time, since EnableTelemetry may attach it after
// construction.
type batcher struct {
	srv     *Server
	maxSize int
	linger  time.Duration

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch

	dispatches atomic.Int64 // SplitsBatch calls issued
	batched    atomic.Int64 // requests served through those calls
}

func newBatcher(srv *Server, maxSize int, linger time.Duration) *batcher {
	if linger <= 0 {
		linger = DefaultBatchLinger
	}
	return &batcher{
		srv:     srv,
		maxSize: maxSize,
		linger:  linger,
		pending: make(map[batchKey]*pendingBatch),
	}
}

// submit joins (or opens) the pending batch for (m, ctx) and waits for the
// batched result under the caller's remaining budget. budget <= 0 means no
// deadline. The first member arms the linger timer; the member that fills
// the batch detaches it and triggers dispatch immediately.
func (b *batcher) submit(m *core.Model, ctx *core.Context, p *te.Problem, demand *tensor.Dense, budget time.Duration, sp *reqtrace.Span) (*tensor.Dense, error) {
	w := batchWaiter{p: p, demand: demand, ch: make(chan batchResult, 1), sp: sp}
	key := batchKey{m: m, ctx: ctx}

	b.mu.Lock()
	pb := b.pending[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		b.pending[key] = pb
		pb.timer = time.AfterFunc(b.linger, func() { b.lingerExpired(pb) })
	}
	pb.waiters = append(pb.waiters, w)
	full := len(pb.waiters) >= b.maxSize
	if full {
		b.detachLocked(pb)
	}
	b.mu.Unlock()

	if full {
		pb.timer.Stop()
		// Dispatch off the filler's goroutine so the filler, too, waits
		// under its own budget rather than riding out a hung inference.
		go b.dispatch(pb)
	}

	if budget > 0 {
		timer := time.NewTimer(budget)
		defer timer.Stop()
		select {
		case r := <-w.ch:
			return r.splits, r.err
		case <-timer.C:
			b.srv.tel.deadlineExpired()
			return nil, fmt.Errorf("deadline exceeded after %v (batched)", budget)
		}
	}
	r := <-w.ch
	return r.splits, r.err
}

// lingerExpired is the timer callback: dispatch whatever has accumulated,
// unless a filler already detached the batch.
func (b *batcher) lingerExpired(pb *pendingBatch) {
	b.mu.Lock()
	if pb.fired {
		b.mu.Unlock()
		return
	}
	b.detachLocked(pb)
	b.mu.Unlock()
	b.dispatch(pb)
}

// detachLocked removes pb from the pending map so late arrivals open a
// fresh batch. Caller holds b.mu.
func (b *batcher) detachLocked(pb *pendingBatch) {
	pb.fired = true
	delete(b.pending, pb.key)
}

// dispatch runs the batched inference once and broadcasts per-member
// results. Every member's output is vetted individually, exactly as the
// unbatched path vets safeInfer output. When any member is traced, the
// shared inference gets its own linked root trace ("batch.dispatch"):
// one batch serves many requests, so its spans belong to none of them —
// each traced member instead carries a batch_trace attribute pointing at
// the shared trace, and the batch trace links back to every member.
func (b *batcher) dispatch(pb *pendingBatch) {
	ws := pb.waiters
	b.dispatches.Add(1)
	b.batched.Add(int64(len(ws)))
	b.srv.tel.batchDispatched(len(ws))
	var batchRoot *reqtrace.Span
	for i := range ws {
		if ws[i].sp == nil {
			continue
		}
		if batchRoot == nil {
			batchRoot = ws[i].sp.NewLinkedRoot("batch.dispatch")
			batchRoot.AnnotateInt("size", int64(len(ws)))
		}
		ws[i].sp.AnnotateTrace("batch_trace", batchRoot.TraceID())
		batchRoot.AnnotateTrace("member_trace", ws[i].sp.TraceID())
	}
	demands := make([]*tensor.Dense, len(ws))
	for i := range ws {
		demands[i] = ws[i].demand
	}
	outs, err := b.run(pb.key.m, pb.key.ctx, demands, batchRoot)
	if err != nil {
		batchRoot.SetError(err)
	}
	batchRoot.End()
	for i := range ws {
		if err != nil {
			ws[i].ch <- batchResult{err: err}
			continue
		}
		splits, verr := vetSplits(ws[i].p, outs[i])
		ws[i].ch <- batchResult{splits: splits, err: verr}
	}
}

// run executes SplitsBatch under a recover guard.
func (b *batcher) run(m *core.Model, ctx *core.Context, demands []*tensor.Dense, sp *reqtrace.Span) (outs []*tensor.Dense, err error) {
	defer func() {
		if r := recover(); r != nil {
			b.srv.tel.panicRecovered()
			outs, err = nil, fmt.Errorf("batched inference panic: %v", r)
		}
	}()
	outs = m.SplitsBatchSpan(nil, ctx, demands, sp)
	if len(outs) != len(demands) {
		return nil, fmt.Errorf("batched inference returned %d outputs for %d demands", len(outs), len(demands))
	}
	return outs, nil
}

// BatchStats is a point-in-time snapshot of collector effectiveness.
type BatchStats struct {
	// Dispatches counts SplitsBatch calls; Batched counts requests served
	// through them. Batched/Dispatches is the realized mean batch size.
	Dispatches int64
	Batched    int64
}

func (b *batcher) stats() BatchStats {
	return BatchStats{Dispatches: b.dispatches.Load(), Batched: b.batched.Load()}
}
