package resilience

// Concurrency regression for the breaker's half-open transition: when the
// cooloff elapses, any number of racing requests may call allow(), but
// exactly one is the probe — everyone else keeps short-circuiting until
// the probe resolves. A breaker that admits two "single" probes under
// contention silently doubles the load on a sick tier; this hammers the
// transition under -race (make race covers this package).

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func raceAllow(b *breaker, goroutines int) int64 {
	var admitted atomic.Int64
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait() // maximize the collision on the transition
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	start.Done()
	done.Wait()
	return admitted.Load()
}

func TestBreakerHalfOpenAdmitsExactlyOneProbeUnderContention(t *testing.T) {
	const goroutines = 16
	for round := 0; round < 50; round++ {
		b, clk := testBreaker(1, time.Minute)
		b.onFailure() // trip (threshold 1)

		// Still inside the cooloff: nobody gets through.
		if got := raceAllow(b, goroutines); got != 0 {
			t.Fatalf("round %d: open breaker admitted %d requests", round, got)
		}

		// Cooloff elapsed (advanced before the racers start, so the clock
		// itself is not part of the race): exactly one probe wins.
		clk.advance(time.Minute)
		if got := raceAllow(b, goroutines); got != 1 {
			t.Fatalf("round %d: half-open transition admitted %d probes, want exactly 1", round, got)
		}

		// Probe fails: breaker re-opens for a fresh cooloff, everyone
		// short-circuits again.
		if !b.onFailure() {
			t.Fatalf("round %d: failed half-open probe did not re-open the breaker", round)
		}
		if got := raceAllow(b, goroutines); got != 0 {
			t.Fatalf("round %d: re-opened breaker admitted %d requests", round, got)
		}

		// Next cooloff: again one probe; this time it succeeds and the
		// breaker closes for everyone.
		clk.advance(time.Minute)
		if got := raceAllow(b, goroutines); got != 1 {
			t.Fatalf("round %d: second half-open admitted %d probes, want exactly 1", round, got)
		}
		b.onSuccess()
		if got := raceAllow(b, goroutines); got != goroutines {
			t.Fatalf("round %d: closed breaker admitted %d of %d", round, got, goroutines)
		}
		if st, _, _ := b.snapshot(); st != BreakerClosed {
			t.Fatalf("round %d: final state %v, want closed", round, st)
		}
	}
}
