package resilience

// Out-of-distribution serving guard. Learned TE has a documented quality
// cliff on inputs far from its training distribution (TEAL, arXiv
// 2210.13763), and the model's differentiability makes that cliff
// reachable on purpose: gradient ascent through the network yields
// traffic matrices that maximize MLU against the current weights
// (verify.AdversarialTM builds exactly those). The guard classifies every
// request from cheap input statistics — demand scale and skew against a
// trained-profile envelope, topology fingerprint against the known
// clusters — and the serving chain demotes what it flags: suspect
// requests skip the full-RAU tier (served by the quality-monitored
// reduced tier or ECMP), hostile requests skip every neural tier and the
// split cache in both directions, so an attacker can neither be served
// stale shared state nor plant entries that later in-profile requests
// would replay (cache poisoning).
//
// The guard fails open by design: with no profile installed every
// request is in-profile, and classification never rejects — worst case a
// request is served ECMP, the same terminal tier every other guard
// degrades to. Disabled (Options.OOD == nil) it costs one nil pointer
// check on the serve path: zero allocations, zero atomics (pinned by
// TestOODDisabledServeZeroAllocs).

import (
	"fmt"
	"sync/atomic"

	"harpte/internal/te"
	"harpte/internal/tensor"
)

// OODVerdict classifies one request against the trained profile.
type OODVerdict int32

const (
	// OODInProfile means every input statistic is inside the envelope;
	// the request is served normally.
	OODInProfile OODVerdict = iota
	// OODSuspect means one statistic is moderately outside the envelope;
	// the request skips the full-RAU tier and the split cache.
	OODSuspect
	// OODHostile means a statistic is far outside the envelope or
	// several deviate at once — the signature of crafted input; the
	// request is served deterministic ECMP and never touches the cache.
	OODHostile

	numOODVerdicts
)

// String returns the constant operator-facing label (also the metric
// label and trace-annotation value; no allocation).
func (v OODVerdict) String() string {
	switch v {
	case OODInProfile:
		return "in-profile"
	case OODSuspect:
		return "suspect"
	case OODHostile:
		return "hostile"
	}
	return "unknown"
}

// OODProfile is the trained-input envelope: the demand scales, demand
// skews and topology fingerprints the model was trained (or warmed) on.
// Build one with Observe over trusted instances, then install it with
// OODGuard.SetProfile. A profile is immutable once installed — Observe
// must not race Classify; retrain into a fresh profile and re-install
// instead (SetProfile swaps atomically).
type OODProfile struct {
	// MinTotal and MaxTotal bound the aggregate demand volume seen in
	// training.
	MinTotal, MaxTotal float64
	// MaxPeakShare bounds the largest single flow's share of the total —
	// the skew statistic. Flash crowds and adversarial TMs concentrate
	// demand, driving this toward 1.
	MaxPeakShare float64
	// Topologies is the set of known topology fingerprints (the trained
	// clusters). Empty means "accept any topology".
	Topologies map[uint64]struct{}
	// SuspectSlack and HostileSlack are the multiplicative margins on the
	// scale and skew envelope: within SuspectSlack× of a bound is still
	// in-profile, within HostileSlack× is suspect, beyond is hostile.
	// Zero values default to 1.5 and 4.
	SuspectSlack, HostileSlack float64

	seen bool
}

// NewOODProfile returns an empty profile with default slacks.
func NewOODProfile() *OODProfile {
	return &OODProfile{SuspectSlack: 1.5, HostileSlack: 4, Topologies: make(map[uint64]struct{})}
}

// Observe widens the envelope to cover one trusted instance. Call it
// over the training set (or a warmup of known-good production traffic)
// before installing the profile; it is not safe to call concurrently
// with Classify.
func (pr *OODProfile) Observe(p *te.Problem, demand *tensor.Dense) {
	total, peak := demandStats(demand)
	if !pr.seen || total < pr.MinTotal {
		pr.MinTotal = total
	}
	if total > pr.MaxTotal {
		pr.MaxTotal = total
	}
	if total > 0 {
		if share := peak / total; share > pr.MaxPeakShare {
			pr.MaxPeakShare = share
		}
	}
	if pr.Topologies == nil {
		pr.Topologies = make(map[uint64]struct{})
	}
	pr.Topologies[p.Fingerprint()] = struct{}{}
	pr.seen = true
}

// demandStats returns the aggregate volume and the largest single entry.
// Allocation-free.
func demandStats(demand *tensor.Dense) (total, peak float64) {
	for _, v := range demand.Data {
		total += v
		if v > peak {
			peak = v
		}
	}
	return total, peak
}

// severity grades how far x sits above bound: 0 within slack, 1 within
// the hostile slack, 2 beyond.
func (pr *OODProfile) severity(x, bound float64) int {
	suspect, hostile := pr.SuspectSlack, pr.HostileSlack
	if suspect <= 0 {
		suspect = 1.5
	}
	if hostile <= 0 {
		hostile = 4
	}
	switch {
	case bound <= 0 || x <= bound*suspect:
		return 0
	case x <= bound*hostile:
		return 1
	default:
		return 2
	}
}

// Classify grades one request against the envelope. An untrained profile
// (no Observe calls and zero bounds) accepts everything. Allocation-free.
func (pr *OODProfile) Classify(p *te.Problem, demand *tensor.Dense) OODVerdict {
	if pr == nil || !pr.seen {
		return OODInProfile
	}
	total, peak := demandStats(demand)

	// Scale: too large is graded multiplicatively above MaxTotal; too
	// small likewise below MinTotal (an all-but-zero TM is as far from
	// the trained regime as a flood, and the reduced tier handles both).
	sev := pr.severity(total, pr.MaxTotal)
	if pr.MinTotal > 0 {
		if total <= 0 {
			// A zero TM is infinitely far below the trained minimum.
			sev = 2
		} else if s := pr.severity(pr.MinTotal, total); s > sev {
			sev = s
		}
	}

	// Skew: the largest flow's share of the total.
	if total > 0 {
		if s := pr.severity(peak/total, pr.MaxPeakShare); s > sev {
			sev = s
		}
	}

	// Topology: an unknown fingerprint is suspect on its own (the model
	// claims transfer, but transfer quality is exactly what the reduced
	// tier's oracle sampling is there to watch), and it escalates any
	// demand deviation: crafted traffic on an unseen topology is the
	// adversarial signature.
	deviations := 0
	if sev > 0 {
		deviations++
	}
	if len(pr.Topologies) > 0 {
		if _, ok := pr.Topologies[p.Fingerprint()]; !ok {
			if sev < 1 {
				sev = 1
			}
			deviations++
		}
	}
	if deviations >= 2 {
		sev = 2
	}

	switch {
	case sev >= 2:
		return OODHostile
	case sev == 1:
		return OODSuspect
	default:
		return OODInProfile
	}
}

// OODGuard is the serve-path wrapper: an atomically swappable profile
// plus the verdict and action counters behind the harp_ood_* metrics.
// Install one via Options.OOD; share one across servers that serve the
// same trained model.
type OODGuard struct {
	profile atomic.Pointer[OODProfile]

	verdicts    [numOODVerdicts]atomic.Int64
	demotions   [numOODVerdicts]atomic.Int64
	cacheBypass atomic.Int64
}

// NewOODGuard returns a guard with no profile: everything classifies
// in-profile until SetProfile installs an envelope.
func NewOODGuard() *OODGuard {
	return &OODGuard{}
}

// SetProfile atomically installs (or, with nil, removes) the envelope.
// The profile must not be mutated after installation.
func (g *OODGuard) SetProfile(pr *OODProfile) {
	if pr == nil {
		g.profile.Store(nil)
		return
	}
	g.profile.Store(pr)
}

// Profile returns the installed envelope (nil when none).
func (g *OODGuard) Profile() *OODProfile { return g.profile.Load() }

// Classify grades one request and tallies the verdict.
func (g *OODGuard) Classify(p *te.Problem, demand *tensor.Dense) OODVerdict {
	v := g.profile.Load().Classify(p, demand)
	g.verdicts[v].Add(1)
	return v
}

// demoted records that a request was denied its normal tier because of
// the verdict.
func (g *OODGuard) demoted(v OODVerdict) { g.demotions[v].Add(1) }

// bypassedCache records that a request skipped the split cache because
// of its verdict.
func (g *OODGuard) bypassedCache() { g.cacheBypass.Add(1) }

// OODStats is a point-in-time snapshot of the guard's counters — the
// plain-Go mirror of the harp_ood_* metrics.
type OODStats struct {
	InProfile, Suspect, Hostile int64
	// SuspectDemotions and HostileDemotions count requests denied their
	// normal tier; CacheBypasses counts requests that skipped the split
	// cache.
	SuspectDemotions, HostileDemotions int64
	CacheBypasses                      int64
}

// Stats snapshots the counters.
func (g *OODGuard) Stats() OODStats {
	if g == nil {
		return OODStats{}
	}
	return OODStats{
		InProfile:        g.verdicts[OODInProfile].Load(),
		Suspect:          g.verdicts[OODSuspect].Load(),
		Hostile:          g.verdicts[OODHostile].Load(),
		SuspectDemotions: g.demotions[OODSuspect].Load(),
		HostileDemotions: g.demotions[OODHostile].Load(),
		CacheBypasses:    g.cacheBypass.Load(),
	}
}

// ObserveSeries widens the envelope over a demand series on one problem —
// the common "profile the training traffic" case. Inputs are validated;
// the first invalid one aborts with the profile unchanged from that point.
func (pr *OODProfile) ObserveSeries(p *te.Problem, demands []*tensor.Dense) error {
	for i, d := range demands {
		if err := ValidateInput(p, d); err != nil {
			return fmt.Errorf("resilience: ood profile instance %d: %w", i, err)
		}
		pr.Observe(p, d)
	}
	return nil
}
