package resilience

import (
	"strings"
	"testing"

	"harpte/internal/core"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
)

// trainedProfile observes a small benign demand range on p: totals in
// [6,12], peak share up to ~0.67.
func trainedProfile(p *te.Problem) *OODProfile {
	pr := NewOODProfile()
	pr.Observe(p, demand(p, 4, 2))
	pr.Observe(p, demand(p, 8, 4))
	return pr
}

func TestOODClassify(t *testing.T) {
	p := twoPathProblem()
	pr := trainedProfile(p)
	damaged, err := p.Graph.FailSRLG(topology.SRLG{Name: "probe", Links: [][2]int{{0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	other := te.NewProblem(damaged, p.Tunnels)

	cases := []struct {
		name string
		p    *te.Problem
		d    *tensor.Dense
		want OODVerdict
	}{
		{"trained instance", p, demand(p, 4, 2), OODInProfile},
		{"within slack above", p, demand(p, 10, 6), OODInProfile},
		{"scale suspect", p, demand(p, 20, 10), OODSuspect},     // total 30 vs max 12: 2.5x
		{"scale hostile", p, demand(p, 60, 30), OODHostile},     // total 90 vs max 12: 7.5x > 4x
		{"starved hostile", p, demand(p, 0.5, 0.5), OODHostile}, // total 1 vs min 6: 6x below
		{"unknown topology alone", other, demand(p, 8, 4), OODSuspect},
		{"unknown topology + scale", other, demand(p, 20, 10), OODHostile},
		{"zero demand", p, demand(p, 0, 0), OODHostile}, // total 0 vs min 6
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := pr.Classify(tc.p, tc.d); got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOODClassifySkew(t *testing.T) {
	p := twoPathProblem()
	// Tight skew envelope: peak share exactly 0.5 in training.
	pr := NewOODProfile()
	pr.Observe(p, demand(p, 6, 6))
	// share 0.97 vs bound 0.5 is ~1.94x: beyond the 1.5 suspect slack,
	// inside the 4x hostile slack.
	if got := pr.Classify(p, demand(p, 11.6, 0.4)); got != OODSuspect {
		t.Fatalf("skewed demand = %v, want suspect", got)
	}
}

func TestOODUntrainedProfileFailsOpen(t *testing.T) {
	p := twoPathProblem()
	var pr *OODProfile
	if got := pr.Classify(p, demand(p, 1e9, 1e9)); got != OODInProfile {
		t.Fatalf("nil profile = %v, want in-profile", got)
	}
	empty := NewOODProfile()
	if got := empty.Classify(p, demand(p, 1e9, 1e9)); got != OODInProfile {
		t.Fatalf("unobserved profile = %v, want in-profile", got)
	}
	g := NewOODGuard()
	if got := g.Classify(p, demand(p, 1e9, 1e9)); got != OODInProfile {
		t.Fatalf("guard without profile = %v, want in-profile", got)
	}
}

func TestOODServeDemotions(t *testing.T) {
	p := twoPathProblem()
	guard := NewOODGuard()
	guard.SetProfile(trainedProfile(p))
	srv := NewServer(core.New(tinyConfig()), Options{OOD: guard, CacheEntries: 8})

	// In-profile: served by the full tier, cache warms.
	if dec := srv.Serve(p, demand(p, 4, 2)); dec.Tier != TierFull || dec.OOD != OODInProfile {
		t.Fatalf("in-profile request: tier=%v ood=%v", dec.Tier, dec.OOD)
	}
	if dec := srv.Serve(p, demand(p, 4, 2)); dec.Tier != TierCached {
		t.Fatalf("warm cache expected, got %v", dec.Tier)
	}

	// Suspect: full tier denied, reduced serves, cache untouched.
	sus := srv.Serve(p, demand(p, 20, 10))
	if sus.OOD != OODSuspect || sus.Tier != TierReducedRAU {
		t.Fatalf("suspect request: tier=%v ood=%v degraded=%v", sus.Tier, sus.OOD, sus.Degraded)
	}
	assertValidSplits(t, p, sus.Splits)
	if len(sus.Degraded) == 0 || !strings.Contains(sus.Degraded[0], "ood suspect") {
		t.Fatalf("suspect degradation not recorded: %v", sus.Degraded)
	}

	// Hostile: straight to ECMP, never cached, cache bypassed.
	host := srv.Serve(p, demand(p, 60, 30))
	if host.OOD != OODHostile || host.Tier != TierECMP {
		t.Fatalf("hostile request: tier=%v ood=%v degraded=%v", host.Tier, host.OOD, host.Degraded)
	}
	assertValidSplits(t, p, host.Splits)
	// Replaying the same hostile demand must not hit a cache entry (no
	// poison write happened, no read happens).
	again := srv.Serve(p, demand(p, 60, 30))
	if again.Tier != TierECMP {
		t.Fatalf("hostile replay served %v, want ecmp", again.Tier)
	}

	st := srv.Stats().OOD
	if st.InProfile != 2 || st.Suspect != 1 || st.Hostile != 2 {
		t.Fatalf("verdict counts %+v", st)
	}
	if st.SuspectDemotions != 1 || st.HostileDemotions != 2 {
		t.Fatalf("demotion counts %+v", st)
	}
	if st.CacheBypasses != 3 {
		t.Fatalf("cache bypasses %d, want 3 (1 suspect + 2 hostile)", st.CacheBypasses)
	}
}

// A hostile request whose quantized TM collides with a benign cached key
// must not be served the cached matrix — the read bypass is what blocks
// serving stale shared state to an attacker probing the quantization.
func TestOODHostileNeverServedFromCache(t *testing.T) {
	p := twoPathProblem()
	guard := NewOODGuard()
	// Envelope so tight that a *near-identical* demand is already
	// hostile: suspect slack 1.0001, hostile slack 1.001.
	pr := NewOODProfile()
	pr.SuspectSlack, pr.HostileSlack = 1.0001, 1.001
	pr.Observe(p, demand(p, 4, 2))
	guard.SetProfile(pr)
	srv := NewServer(core.New(tinyConfig()), Options{OOD: guard, CacheEntries: 8})

	if dec := srv.Serve(p, demand(p, 4, 2)); dec.Tier != TierFull {
		t.Fatalf("warmup tier %v", dec.Tier)
	}
	// +0.5% total: same quantized cache key (quantum 1%), but hostile.
	host := srv.Serve(p, demand(p, 4.02, 2.01))
	if host.OOD != OODHostile {
		t.Fatalf("crafted demand classified %v, want hostile", host.OOD)
	}
	if host.Tier == TierCached {
		t.Fatalf("hostile request served from the shared cache")
	}
}

func TestOODGuardSetProfileSwap(t *testing.T) {
	p := twoPathProblem()
	g := NewOODGuard()
	g.SetProfile(trainedProfile(p))
	if v := g.Classify(p, demand(p, 60, 30)); v != OODHostile {
		t.Fatalf("want hostile before swap, got %v", v)
	}
	wide := NewOODProfile()
	wide.Observe(p, demand(p, 60, 30))
	wide.Observe(p, demand(p, 4, 2))
	g.SetProfile(wide)
	if v := g.Classify(p, demand(p, 60, 30)); v != OODInProfile {
		t.Fatalf("want in-profile after swap, got %v", v)
	}
	g.SetProfile(nil)
	if v := g.Classify(p, demand(p, 1e9, 1e9)); v != OODInProfile {
		t.Fatalf("removed profile must fail open, got %v", v)
	}
}

// The acceptance-gate pin: with the guard disabled (Options.OOD nil) the
// serve path must stay allocation-free on the cache-hit path — the same
// gate PR-4/PR-8 pinned for verify and tracing. The guard's disabled
// cost is one nil pointer check, so the existing zero-alloc property
// must hold bit-for-bit.
func TestOODDisabledServeZeroAllocs(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := twoPathProblem()
	d := demand(p, 4, 2)
	srv := NewServer(core.New(tinyConfig()), Options{CacheEntries: 8})
	if dec := srv.Serve(p, d); dec.Tier != TierFull {
		t.Fatalf("warmup tier %v", dec.Tier)
	}
	if dec := srv.Serve(p, d); dec.Tier != TierCached {
		t.Fatalf("cache did not warm: %v", dec.Tier)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if dec := srv.Serve(p, d); dec.Tier != TierCached {
			t.Fatalf("expected cached answer, got %v", dec.Tier)
		}
	}); avg != 0 {
		t.Fatalf("OOD-disabled cache-hit path allocates %.1f/op, want 0", avg)
	}
}

// With the guard enabled, classification itself must stay allocation-free
// (demand scan + map probe + two atomics); the in-profile cache-hit path
// keeps the zero-alloc property too.
func TestOODEnabledClassifyZeroAllocs(t *testing.T) {
	if tensor.RaceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := twoPathProblem()
	d := demand(p, 4, 2)
	guard := NewOODGuard()
	guard.SetProfile(trainedProfile(p))
	srv := NewServer(core.New(tinyConfig()), Options{OOD: guard, CacheEntries: 8})
	if dec := srv.Serve(p, d); dec.Tier != TierFull {
		t.Fatalf("warmup tier %v", dec.Tier)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if dec := srv.Serve(p, d); dec.Tier != TierCached {
			t.Fatalf("expected cached answer, got %v", dec.Tier)
		}
	}); avg != 0 {
		t.Fatalf("OOD-enabled in-profile cache-hit path allocates %.1f/op, want 0", avg)
	}
}

func TestObserveSeriesValidates(t *testing.T) {
	p := twoPathProblem()
	pr := NewOODProfile()
	bad := tensor.New(p.NumFlows()+1, 1)
	if err := pr.ObserveSeries(p, []*tensor.Dense{demand(p, 4, 2), bad}); err == nil {
		t.Fatalf("want validation error for malformed demand")
	}
	if err := pr.ObserveSeries(p, []*tensor.Dense{demand(p, 4, 2), demand(p, 8, 4)}); err != nil {
		t.Fatalf("ObserveSeries: %v", err)
	}
	if pr.MaxTotal != 12 || pr.MinTotal != 6 {
		t.Fatalf("envelope %+v", pr)
	}
}
