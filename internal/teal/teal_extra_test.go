package teal

import (
	"math"
	"math/rand"
	"testing"

	"harpte/internal/autograd"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/tunnels"
)

func TestCapacityChangesOutput(t *testing.T) {
	// Unlike DOTE, TEAL models topology: halving a capacity must change the
	// splits (Table 1's "models topology" row).
	p := twoPathProblem()
	m := New(DefaultConfig(), p.Tunnels.K)
	d := demandVec(p, 0, 1, 5)
	s1 := m.Splits(m.NewContext(p), d)
	p2 := te.NewProblem(p.Graph.WithPartialFailure(0, 1, 0.4), p.Tunnels)
	s2 := m.Splits(m.NewContext(p2), d)
	if tensor.Equal(s1, s2, 1e-12) {
		t.Fatal("TEAL ignored a capacity change")
	}
}

func TestReinforceAccumulatesGradients(t *testing.T) {
	p := twoPathProblem()
	cfg := DefaultConfig()
	cfg.RL = true
	m := New(cfg, p.Tunnels.K)
	ctx := m.NewContext(p)
	d := demandVec(p, 0, 1, 9)
	rng := rand.New(rand.NewSource(2))
	// A single RL step must produce nonzero gradients somewhere and then
	// zero them after the optimizer step.
	opt := autograd.NewAdam(1e-3)
	before := m.snapshot()
	m.TrainStep(opt, []Sample{{Ctx: ctx, Demand: d}}, rng)
	changed := false
	after := m.snapshot()
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("REINFORCE step changed no parameters")
	}
	for _, param := range m.Params() {
		for _, g := range param.Grad.Data {
			if g != 0 {
				t.Fatal("gradients not zeroed after step")
			}
		}
	}
}

func TestRLSamplesFloor(t *testing.T) {
	p := twoPathProblem()
	cfg := DefaultConfig()
	cfg.RL = true
	cfg.RLSamples = 0 // must be clamped internally to >= 2
	m := New(cfg, p.Tunnels.K)
	ctx := m.NewContext(p)
	rng := rand.New(rand.NewSource(3))
	opt := autograd.NewAdam(1e-3)
	mlu := m.TrainStep(opt, []Sample{{Ctx: ctx, Demand: demandVec(p, 0, 1, 4)}}, rng)
	if math.IsNaN(mlu) || mlu <= 0 {
		t.Fatalf("bad MLU %v", mlu)
	}
}

func TestFitValidationSelection(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.Tunnels.K)
	ctx := m.NewContext(p)
	d := demandVec(p, 0, 1, 9)
	samples := []Sample{{Ctx: ctx, Demand: d}}
	_, bestVal := m.Fit(samples, samples, 30, 5e-3, 1, 1)
	// After Fit the restored parameters must achieve the reported best.
	got := m.MeanMLU(samples)
	if math.Abs(got-bestVal) > 1e-9 {
		t.Fatalf("restored model MLU %v != best val %v", got, bestVal)
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	m := New(DefaultConfig(), 2)
	opt := autograd.NewAdam(1e-3)
	if v := m.TrainStep(opt, nil, rand.New(rand.NewSource(1))); v != 0 {
		t.Fatalf("empty batch returned %v", v)
	}
}

func TestNumParamsPositive(t *testing.T) {
	m := New(DefaultConfig(), 4)
	if m.NumParams() <= 0 {
		t.Fatal("no parameters")
	}
}

func TestContextOnFailedTopology(t *testing.T) {
	g := topology.Abilene()
	g.EdgeNodes = []int{0, 9}
	set := tunnels.Compute(g, 2)
	failed := g.WithFailedLink(0, 1)
	p := te.NewProblem(failed, set)
	m := New(DefaultConfig(), 2)
	ctx := m.NewContext(p)
	d := tensor.New(p.NumFlows(), 1)
	d.Fill(1)
	splits := m.Splits(ctx, d)
	for _, v := range splits.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN split on failed topology")
		}
	}
}
