package teal

import (
	"math"
	"math/rand"
	"testing"

	"harpte/internal/autograd"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func twoPathProblem() *te.Problem {
	g := topology.New("twopath", 3)
	g.AddBidirectional(0, 1, 10)
	g.AddBidirectional(0, 2, 5)
	g.AddBidirectional(2, 1, 5)
	g.EdgeNodes = []int{0, 1}
	return te.NewProblem(g, tunnels.Compute(g, 2))
}

func demandVec(p *te.Problem, src, dst int, v float64) *tensor.Dense {
	d := tensor.New(p.NumFlows(), 1)
	d.Data[p.Tunnels.FlowIndex(src, dst)] = v
	return d
}

func TestForwardIsDistribution(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.Tunnels.K)
	ctx := m.NewContext(p)
	splits := m.Splits(ctx, demandVec(p, 0, 1, 5))
	for f := 0; f < splits.Rows; f++ {
		var s float64
		for _, v := range splits.Row(f) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", f, s)
		}
	}
}

func TestDirectTrainingApproachesOptimal(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.Tunnels.K)
	ctx := m.NewContext(p)
	d := demandVec(p, 0, 1, 9)
	opt := lp.Solve(p, d)
	samples := []Sample{{Ctx: ctx, Demand: d}}
	m.Fit(samples, samples, 200, 5e-3, 1, 1)
	mlu := p.MLU(m.Splits(ctx, d), d)
	if te.NormMLU(mlu, opt.MLU) > 1.10 {
		t.Fatalf("TEAL NormMLU %.3f after training", te.NormMLU(mlu, opt.MLU))
	}
}

func TestRLTrainingImproves(t *testing.T) {
	p := twoPathProblem()
	cfg := DefaultConfig()
	cfg.RL = true
	cfg.RLSamples = 8
	m := New(cfg, p.Tunnels.K)
	ctx := m.NewContext(p)
	d := demandVec(p, 0, 1, 9)
	samples := []Sample{{Ctx: ctx, Demand: d}}
	before := m.MeanMLU(samples)
	curve, _ := m.Fit(samples, samples, 120, 5e-3, 1, 1)
	after := m.MeanMLU(samples)
	if len(curve) != 120 {
		t.Fatalf("curve length %d", len(curve))
	}
	if after >= before {
		t.Fatalf("RL training did not improve MLU: %v -> %v", before, after)
	}
}

// TestSensitiveToTunnelOrder verifies the architectural property the paper
// exploits in §5.4: permuting a flow's tunnels does NOT simply permute
// TEAL's splits (the per-flow concat DNN is positional).
func TestSensitiveToTunnelOrder(t *testing.T) {
	g := topology.Abilene()
	g.EdgeNodes = []int{0, 4, 9, 11}
	set := tunnels.Compute(g, 4)
	p := te.NewProblem(g, set)
	m := New(DefaultConfig(), set.K)
	rng := rand.New(rand.NewSource(3))
	tm := traffic.Gravity(g.NumNodes, traffic.GravityWeights(g, rng), 40)
	d := traffic.DemandVector(tm, set.Flows)

	base := m.Splits(m.NewContext(p), d)
	shuffled := set.Shuffled(rng)
	p2 := te.NewProblem(g, shuffled)
	got := m.Splits(m.NewContext(p2), d)

	// If TEAL were order-invariant, split mass per tunnel key would match.
	equivariant := true
	for f := range set.Flows {
		for k := 0; k < set.K; k++ {
			key := shuffled.Tunnel(f, k).Key(g)
			var want, have float64
			for j := 0; j < set.K; j++ {
				if set.Tunnel(f, j).Key(g) == key {
					want += base.At(f, j)
				}
				if shuffled.Tunnel(f, j).Key(g) == key {
					have += got.At(f, j)
				}
			}
			if math.Abs(want-have) > 1e-6 {
				equivariant = false
			}
		}
	}
	if equivariant {
		t.Fatal("TEAL unexpectedly invariant to tunnel reordering — the concat DNN should be positional")
	}
}

func TestContextHandlesVaryingEdgeCounts(t *testing.T) {
	// Same model instance must run on two topologies with different E and F
	// (TEAL "does allow for some topology changes").
	m := New(DefaultConfig(), 2)
	for _, build := range []func() *te.Problem{
		twoPathProblem,
		func() *te.Problem {
			g := topology.Abilene()
			g.EdgeNodes = []int{0, 9}
			return te.NewProblem(g, tunnels.Compute(g, 2))
		},
	} {
		p := build()
		ctx := m.NewContext(p)
		d := tensor.New(p.NumFlows(), 1)
		d.Fill(1)
		splits := m.Splits(ctx, d)
		if splits.Rows != p.NumFlows() {
			t.Fatalf("splits rows %d want %d", splits.Rows, p.NumFlows())
		}
	}
}

func TestTrainStepDirectReducesMLU(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.Tunnels.K)
	ctx := m.NewContext(p)
	d := demandVec(p, 0, 1, 9)
	s := Sample{Ctx: ctx, Demand: d}
	opt := autograd.NewAdam(5e-3)
	rng := rand.New(rand.NewSource(1))
	first := m.TrainStep(opt, []Sample{s}, rng)
	var last float64
	for i := 0; i < 120; i++ {
		last = m.TrainStep(opt, []Sample{s}, rng)
	}
	if last >= first {
		t.Fatalf("MLU did not decrease: %v -> %v", first, last)
	}
}

func TestMedianHelper(t *testing.T) {
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestRLCurveIsNoisierThanDirect(t *testing.T) {
	// Sanity check of the Fig-18 mechanism: on the same data the RL curve
	// should show more epoch-to-epoch variation than the direct one.
	p := twoPathProblem()
	d := demandVec(p, 0, 1, 9)

	direct := New(DefaultConfig(), p.Tunnels.K)
	dctx := direct.NewContext(p)
	dcurve, _ := direct.Fit([]Sample{{Ctx: dctx, Demand: d}}, nil, 60, 5e-3, 1, 1)

	cfg := DefaultConfig()
	cfg.RL = true
	cfg.RLSigma = 0.5
	rl := New(cfg, p.Tunnels.K)
	rctx := rl.NewContext(p)
	rcurve, _ := rl.Fit([]Sample{{Ctx: rctx, Demand: d}}, nil, 60, 5e-3, 1, 1)

	if roughness(rcurve) <= roughness(dcurve)*0.5 {
		t.Fatalf("RL curve suspiciously smooth: %v vs direct %v",
			roughness(rcurve), roughness(dcurve))
	}
}

func roughness(curve []float64) float64 {
	var r float64
	for i := 1; i < len(curve); i++ {
		r += math.Abs(curve[i] - curve[i-1])
	}
	return r
}
