// Package teal implements the TEAL baseline (Xu et al., SIGCOMM '23) as
// the paper characterizes it (§2.1, §2.3): alternating FlowGNN layers —
// message passing over the bipartite edge↔tunnel graph — and per-flow DNN
// layers that CONCATENATE the embeddings of a flow's tunnels. The
// concatenation is what makes TEAL sensitive to tunnel ordering: relabeling
// tunnels between training and testing presents the DNN with inputs it has
// never seen. The allocation policy likewise concatenates per-flow tunnel
// embeddings into split logits.
//
// TEAL trains with deep reinforcement learning. We provide both a
// REINFORCE-style stochastic policy gradient (Gaussian perturbation of the
// logits, reward = −MLU, mean-reward baseline; a simplification of COMA
// that preserves the high gradient variance responsible for the AnonNet
// convergence failures in the paper's Figure 18) and a deterministic
// direct-loss mode used where the paper's observations do not depend on RL
// (DESIGN.md documents this substitution).
package teal

import (
	"math"
	"math/rand"

	"harpte/internal/autograd"
	"harpte/internal/nn"
	"harpte/internal/te"
	"harpte/internal/tensor"
)

// Config holds TEAL's hyperparameters.
type Config struct {
	EmbedDim      int
	FlowGNNLayers int
	Hidden        int // per-flow DNN hidden width
	LossTemp      float64
	Seed          int64
	// RL switches on REINFORCE training; RLSamples estimates the reward
	// gradient, RLSigma is the exploration noise.
	RL        bool
	RLSamples int
	RLSigma   float64
}

// DefaultConfig returns a CPU-sized configuration.
func DefaultConfig() Config {
	return Config{
		EmbedDim: 8, FlowGNNLayers: 2, Hidden: 32,
		LossTemp: 0.03, Seed: 1,
		RL: false, RLSamples: 6, RLSigma: 0.3,
	}
}

// Model is a TEAL instance for a fixed tunnels-per-flow count K. Flow and
// edge counts may vary across problems (the GNN handles them), but K is
// baked into the per-flow DNN and policy shapes.
type Model struct {
	Cfg Config
	K   int

	edgeInit   *nn.Linear // edge features → d
	tunnelInit *nn.Linear // tunnel features → d
	edgeUpd    []*nn.Linear
	tunnelUpd  []*nn.Linear
	flowDNN    []*nn.MLP // per-flow: (K·d) → (K·d)
	policy     *nn.MLP   // per-flow: (K·d) → K logits

	params []*autograd.Tensor
}

// New builds a TEAL model for K tunnels per flow.
func New(cfg Config, k int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EmbedDim
	m := &Model{Cfg: cfg, K: k}
	m.edgeInit = nn.NewLinear(rng, 2, d)
	m.tunnelInit = nn.NewLinear(rng, 2, d)
	for i := 0; i < cfg.FlowGNNLayers; i++ {
		m.edgeUpd = append(m.edgeUpd, nn.NewLinear(rng, 2*d, d))
		m.tunnelUpd = append(m.tunnelUpd, nn.NewLinear(rng, 2*d, d))
		m.flowDNN = append(m.flowDNN, nn.NewMLP(rng, nn.ActReLU, k*d, cfg.Hidden, k*d))
	}
	m.policy = nn.NewMLP(rng, nn.ActReLU, k*d, cfg.Hidden, k)
	mods := []nn.Module{m.edgeInit, m.tunnelInit, m.policy}
	for i := range m.edgeUpd {
		mods = append(mods, m.edgeUpd[i], m.tunnelUpd[i], m.flowDNN[i])
	}
	m.params = nn.CollectParams(mods...)
	return m
}

// Params returns the trainable parameters.
func (m *Model) Params() []*autograd.Tensor { return m.params }

// NumParams returns the scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.Val.Data)
	}
	return n
}

// Context caches the per-problem structural constants.
type Context struct {
	p          *te.Problem
	edgeFeat   *tensor.Dense // E×2
	tunnelLen  []int
	edgeAggT   *tensor.CSR // E×T row-normalized (edge ← its tunnels)
	tunnelAggE *tensor.CSR // T×E row-normalized (tunnel ← its edges)
	maxCap     float64
	invCapNorm *tensor.Dense // E×1, maxCap/c_e
	numFlows   int
	numTunnels int
}

// NewContext precomputes the bipartite incidence operators for a problem.
func (m *Model) NewContext(p *te.Problem) *Context {
	g := p.Graph
	set := p.Tunnels
	numFlows := len(set.Flows)
	numTunnels := numFlows * set.K
	ctx := &Context{p: p, numFlows: numFlows, numTunnels: numTunnels, maxCap: g.MaxCapacity()}
	if ctx.maxCap <= 0 {
		ctx.maxCap = 1
	}

	inc := p.Incidence() // E×T counts
	// Row-normalize E×T for edge aggregation.
	var eEntries, tEntries []tensor.COO
	edgeDeg := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		edgeDeg[e] = float64(inc.RowPtr[e+1] - inc.RowPtr[e])
	}
	tunnelDeg := make([]float64, numTunnels)
	for e := 0; e < g.NumEdges(); e++ {
		for ptr := inc.RowPtr[e]; ptr < inc.RowPtr[e+1]; ptr++ {
			tunnelDeg[inc.ColIdx[ptr]] += inc.Val[ptr]
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		for ptr := inc.RowPtr[e]; ptr < inc.RowPtr[e+1]; ptr++ {
			t := inc.ColIdx[ptr]
			if edgeDeg[e] > 0 {
				eEntries = append(eEntries, tensor.E(e, t, inc.Val[ptr]/edgeDeg[e]))
			}
			if tunnelDeg[t] > 0 {
				tEntries = append(tEntries, tensor.E(t, e, inc.Val[ptr]/tunnelDeg[t]))
			}
		}
	}
	ctx.edgeAggT = tensor.NewCSR(g.NumEdges(), numTunnels, eEntries)
	ctx.tunnelAggE = tensor.NewCSR(numTunnels, g.NumEdges(), tEntries)

	ctx.edgeFeat = tensor.New(g.NumEdges(), 2)
	maxDeg := 1.0
	for _, d := range edgeDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		ctx.edgeFeat.Set(e, 0, g.Edges[e].Capacity/ctx.maxCap)
		ctx.edgeFeat.Set(e, 1, edgeDeg[e]/maxDeg)
	}
	ctx.tunnelLen = make([]int, numTunnels)
	for f := 0; f < numFlows; f++ {
		for k := 0; k < set.K; k++ {
			ctx.tunnelLen[f*set.K+k] = len(set.Tunnel(f, k).Edges)
		}
	}
	ctx.invCapNorm = tensor.New(g.NumEdges(), 1)
	for e := 0; e < g.NumEdges(); e++ {
		ctx.invCapNorm.Data[e] = ctx.maxCap / g.Edges[e].Capacity
	}
	return ctx
}

// logits computes per-flow split logits (F×K node).
func (m *Model) logits(tp *autograd.Tape, ctx *Context, demand *tensor.Dense) *autograd.Tensor {
	k, d := m.K, m.Cfg.EmbedDim
	mean := 0.0
	for _, v := range demand.Data {
		mean += v
	}
	mean /= float64(ctx.numFlows)
	if mean <= 0 {
		mean = 1
	}
	tunnelFeat := tensor.New(ctx.numTunnels, 2)
	maxLen := 1
	for _, l := range ctx.tunnelLen {
		if l > maxLen {
			maxLen = l
		}
	}
	for f := 0; f < ctx.numFlows; f++ {
		for j := 0; j < k; j++ {
			tunnelFeat.Set(f*k+j, 0, demand.Data[f]/mean)
			tunnelFeat.Set(f*k+j, 1, float64(ctx.tunnelLen[f*k+j])/float64(maxLen))
		}
	}

	edgeEmb := tp.ReLU(m.edgeInit.Forward(tp, autograd.NewConst(ctx.edgeFeat)))
	tunEmb := tp.ReLU(m.tunnelInit.Forward(tp, autograd.NewConst(tunnelFeat)))
	for i := 0; i < m.Cfg.FlowGNNLayers; i++ {
		// Bipartite message passing.
		aggE := tp.CSRMul(ctx.tunnelAggE, edgeEmb) // T×d
		tunEmb = tp.ReLU(m.tunnelUpd[i].Forward(tp, tp.ConcatCols(tunEmb, aggE)))
		aggT := tp.CSRMul(ctx.edgeAggT, tunEmb) // E×d
		edgeEmb = tp.ReLU(m.edgeUpd[i].Forward(tp, tp.ConcatCols(edgeEmb, aggT)))
		// Per-flow DNN over the CONCATENATED tunnel embeddings — the
		// order-sensitive step.
		flowIn := tp.Reshape(tunEmb, ctx.numFlows, k*d)
		tunEmb = tp.Reshape(m.flowDNN[i].Forward(tp, flowIn), ctx.numTunnels, d)
	}
	return m.policy.Forward(tp, tp.Reshape(tunEmb, ctx.numFlows, k*d)) // F×K
}

// Forward maps a demand vector to the F×K split matrix node.
func (m *Model) Forward(tp *autograd.Tape, ctx *Context, demand *tensor.Dense) *autograd.Tensor {
	return tp.SoftmaxRows(m.logits(tp, ctx, demand))
}

// Splits runs inference.
func (m *Model) Splits(ctx *Context, demand *tensor.Dense) *tensor.Dense {
	tp := autograd.NewTape()
	return m.Forward(tp, ctx, demand).Val.Clone()
}

// Sample is a training instance (LossDemand nil = Demand).
type Sample struct {
	Ctx        *Context
	Demand     *tensor.Dense
	LossDemand *tensor.Dense
}

func (s Sample) lossDemand() *tensor.Dense {
	if s.LossDemand != nil {
		return s.LossDemand
	}
	return s.Demand
}

// lossMLU builds the (smooth) MLU objective.
func (m *Model) lossMLU(tp *autograd.Tape, ctx *Context, splits *autograd.Tensor, demand *tensor.Dense) *autograd.Tensor {
	load := tensor.New(ctx.numTunnels, 1)
	for f := 0; f < ctx.numFlows; f++ {
		for j := 0; j < m.K; j++ {
			load.Data[f*m.K+j] = demand.Data[f] / ctx.maxCap
		}
	}
	x := tp.Mul(tp.Reshape(splits, ctx.numTunnels, 1), autograd.NewConst(load))
	util := tp.Mul(tp.CSRMul(ctx.p.Incidence(), x), autograd.NewConst(ctx.invCapNorm))
	if m.Cfg.LossTemp > 0 {
		return tp.SmoothMax(util, m.Cfg.LossTemp)
	}
	return tp.Max(util)
}

// TrainStep performs one optimizer step on the batch using either direct
// differentiation or REINFORCE (Cfg.RL). Returns the mean achieved MLU on
// the batch (hard, for logging).
func (m *Model) TrainStep(opt *autograd.Adam, batch []Sample, rng *rand.Rand) float64 {
	if len(batch) == 0 {
		return 0
	}
	var meanMLU float64
	scale := 1 / float64(len(batch))
	for _, s := range batch {
		if m.Cfg.RL {
			meanMLU += m.reinforceStep(s, rng, scale)
		} else {
			tp := autograd.NewTape()
			splits := m.Forward(tp, s.Ctx, s.Demand)
			loss := tp.Scale(m.lossMLU(tp, s.Ctx, splits, s.lossDemand()), scale)
			tp.Backward(loss)
			meanMLU += s.Ctx.p.MLU(splits.Val, s.lossDemand()) * scale
		}
	}
	opt.Step(m.params)
	return meanMLU
}

// reinforceStep estimates ∇E[MLU] with Gaussian logit perturbations and a
// mean-reward baseline, then accumulates it through the logit network.
func (m *Model) reinforceStep(s Sample, rng *rand.Rand, scale float64) float64 {
	tp := autograd.NewTape()
	logits := m.logits(tp, s.Ctx, s.Demand)
	n := m.Cfg.RLSamples
	if n < 2 {
		n = 2
	}
	sigma := m.Cfg.RLSigma
	noises := make([]*tensor.Dense, n)
	rewards := make([]float64, n)
	var baseline float64
	for i := 0; i < n; i++ {
		noise := tensor.New(logits.Rows(), logits.Cols())
		for j := range noise.Data {
			noise.Data[j] = rng.NormFloat64() * sigma
		}
		noises[i] = noise
		perturbed := logits.Val.Clone()
		tensor.AxpyInto(perturbed, noise, 1)
		splits := softmaxDense(perturbed)
		mlu := s.Ctx.p.MLU(splits, s.lossDemand())
		rewards[i] = -mlu
		baseline += rewards[i]
	}
	baseline /= float64(n)

	// d(-E[reward])/d(logits) ≈ -Σ (R_i - b)·noise_i / (σ²·n)
	grad := tensor.New(logits.Rows(), logits.Cols())
	for i := 0; i < n; i++ {
		tensor.AxpyInto(grad, noises[i], -(rewards[i]-baseline)/(sigma*sigma*float64(n)))
	}
	// Pseudo-loss <logits, grad> has d/dlogits = grad.
	pseudo := tp.Scale(tp.SumAll(tp.Mul(logits, autograd.NewConst(grad))), scale)
	tp.Backward(pseudo)

	// Deterministic policy's achieved MLU for logging.
	return s.Ctx.p.MLU(softmaxDense(logits.Val), s.lossDemand()) * scale
}

func softmaxDense(logits *tensor.Dense) *tensor.Dense {
	out := tensor.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		dst := out.Row(i)
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - m)
			dst[j] = e
			sum += e
		}
		for j := range dst {
			dst[j] /= sum
		}
	}
	return out
}

// Fit trains with validation-best selection; returns the per-epoch median
// training MLU curve (the quantity Figure 18 plots) and the best val MLU.
func (m *Model) Fit(train, val []Sample, epochs int, lr float64, batchSize int, seed int64) (curve []float64, bestVal float64) {
	if batchSize <= 0 {
		batchSize = 8
	}
	opt := autograd.NewAdam(lr)
	opt.GradClip = 5
	rng := rand.New(rand.NewSource(seed))
	bestVal = 1e300
	var snap [][]float64
	for epoch := 0; epoch < epochs; epoch++ {
		order := rng.Perm(len(train))
		var mlus []float64
		for at := 0; at < len(order); at += batchSize {
			end := at + batchSize
			if end > len(order) {
				end = len(order)
			}
			batch := make([]Sample, 0, end-at)
			for _, i := range order[at:end] {
				batch = append(batch, train[i])
			}
			mlus = append(mlus, m.TrainStep(opt, batch, rng))
		}
		curve = append(curve, median(mlus))
		v := m.MeanMLU(val)
		if v < bestVal {
			bestVal = v
			snap = m.snapshot()
		}
	}
	if snap != nil {
		m.restore(snap)
	}
	return curve, bestVal
}

// MeanMLU evaluates mean hard MLU over the samples.
func (m *Model) MeanMLU(samples []Sample) float64 {
	if len(samples) == 0 {
		return 1e300
	}
	var total float64
	for _, s := range samples {
		total += s.Ctx.p.MLU(m.Splits(s.Ctx, s.Demand), s.lossDemand())
	}
	return total / float64(len(samples))
}

func (m *Model) snapshot() [][]float64 {
	out := make([][]float64, len(m.params))
	for i, p := range m.params {
		out[i] = append([]float64(nil), p.Val.Data...)
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for i, p := range m.params {
		copy(p.Val.Data, snap[i])
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}
