package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a, b := randDense(rng, 3, 4), randDense(rng, 4, 2)
	dst := New(3, 2)
	dst.Fill(1)
	MatMulAcc(dst, a, b)
	want := New(3, 2)
	MatMul(want, a, b)
	for i := range want.Data {
		want.Data[i]++
	}
	if !Equal(dst, want, 1e-12) {
		t.Fatal("MatMulAcc did not accumulate onto existing values")
	}
}

func TestMatMulATBAccMatchesZeroedVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a, b := randDense(rng, 5, 3), randDense(rng, 5, 4)
	acc := New(3, 4)
	MatMulATBAcc(acc, a, b)
	want := New(3, 4)
	MatMulATB(want, a, b)
	if !Equal(acc, want, 1e-12) {
		t.Fatal("ATBAcc on zeroed dst must equal ATB")
	}
}

func TestMatMulABTAccMatchesZeroedVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a, b := randDense(rng, 4, 6), randDense(rng, 3, 6)
	acc := New(4, 3)
	MatMulABTAcc(acc, a, b)
	want := New(4, 3)
	MatMulABT(want, a, b)
	if !Equal(acc, want, 1e-12) {
		t.Fatal("ABTAcc on zeroed dst must equal ABT")
	}
}

func TestAccKernelShapePanics(t *testing.T) {
	for i, f := range []func(){
		func() { MatMulAcc(New(2, 2), New(2, 3), New(2, 2)) },
		func() { MatMulATBAcc(New(2, 2), New(3, 2), New(4, 2)) },
		func() { MatMulABTAcc(New(2, 2), New(2, 3), New(2, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// Distributivity: (A+B)×C == A×C + B×C.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a1, a2 := randDense(rng, m, k), randDense(rng, m, k)
		c := randDense(rng, k, n)
		sum := New(m, k)
		AddInto(sum, a1, a2)
		left := New(m, n)
		MatMul(left, sum, c)
		r1, r2 := New(m, n), New(m, n)
		MatMul(r1, a1, c)
		MatMul(r2, a2, c)
		right := New(m, n)
		AddInto(right, r1, r2)
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Transpose identity: (A×B)ᵀ == Bᵀ×Aᵀ, exercised through the ABT/ATB kernels.
func TestMatMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a, b := randDense(rng, 3, 5), randDense(rng, 5, 4)
	ab := New(3, 4)
	MatMul(ab, a, b)
	// Bᵀ×Aᵀ via MatMulABT on transposed operands.
	bt, at := Transpose(b), Transpose(a)
	btat := New(4, 3)
	MatMul(btat, bt, at)
	if !Equal(Transpose(ab), btat, 1e-9) {
		t.Fatal("(AB)^T != B^T A^T")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1, 2)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestRowIsView(t *testing.T) {
	a := New(2, 3)
	a.Row(1)[2] = 7
	if a.At(1, 2) != 7 {
		t.Fatal("Row must be a view")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Fatal("different shapes must not be Equal")
	}
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0).Max()
}

func TestCSRMulDenseTAccAccumulates(t *testing.T) {
	c := NewCSR(2, 3, []COO{E(0, 0, 2), E(1, 2, 3)})
	x := FromSlice(2, 1, []float64{1, 1})
	dst := New(3, 1)
	dst.Fill(10)
	c.MulDenseTAcc(dst, x)
	if dst.Data[0] != 12 || dst.Data[2] != 13 || dst.Data[1] != 10 {
		t.Fatalf("got %v", dst.Data)
	}
}

func TestCSREmptyRows(t *testing.T) {
	c := NewCSR(3, 3, nil)
	if c.NNZ() != 0 {
		t.Fatal("empty CSR should have no entries")
	}
	dst := New(3, 1)
	c.MulDense(dst, New(3, 1))
	if dst.Sum() != 0 {
		t.Fatal("empty CSR must produce zeros")
	}
}

func TestCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []COO{E(2, 0, 1)})
}

func TestScaleIntoAliasSafe(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	ScaleInto(a, a, 2)
	if a.Data[2] != 6 {
		t.Fatal("in-place scale broken")
	}
}

func TestNormZero(t *testing.T) {
	if New(2, 2).Norm2() != 0 {
		t.Fatal("zero matrix norm")
	}
	if math.IsNaN(New(0, 0).Norm2()) {
		t.Fatal("empty norm NaN")
	}
}
