package tensor

import (
	"fmt"
	"math"
)

// This file is the float32 half of the serving-precision split: training and
// the differentiable path stay float64 end to end, while inference can run
// on float32 storage and arithmetic (half the memory traffic, which is what
// dominates KDL-scale forward passes). Float32 values never flow back into
// training state.
//
// Conversion discipline: float64 → float32 narrowing can silently overflow
// to ±Inf (any finite |v| ≥ 3.4028235677973366e38, the round-to-nearest
// boundary past MaxFloat32). Convert32 rejects that with a typed error —
// model weights are small and an overflow means the checkpoint is corrupt —
// while Clamp32 saturates to ±MaxFloat32 for request-path quantities
// (demands, capacities) where serving must not fail on an extreme but legal
// input. Non-finite inputs are passed through unchanged in both: NaN/Inf
// detection is the health guards' job, not the converter's.

// Dense32 is a row-major float32 matrix, the inference-precision mirror of
// Dense. It supports only the forward kernels the float32 serving path
// needs; nothing in this type participates in autograd.
type Dense32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zero-initialized Rows×Cols float32 matrix.
func New32(rows, cols int) *Dense32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns a view (not a copy) of row i.
func (m *Dense32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at row i, column j.
func (m *Dense32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Zero sets every element to 0.
func (m *Dense32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// ToDense widens into a fresh float64 matrix. Widening is exact, so the
// result round-trips bit-for-bit through ConvertDense32.
func (m *Dense32) ToDense() *Dense {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// WidenInto writes float64(m) into dst (same shape).
func (m *Dense32) WidenInto(dst *Dense) {
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic("tensor: WidenInto shape mismatch")
	}
	for i, v := range m.Data {
		dst.Data[i] = float64(v)
	}
}

// Float32OverflowError reports a finite float64 that narrows to ±Inf in
// float32. Index is the flat position in the source slice.
type Float32OverflowError struct {
	Index int
	Value float64
}

func (e *Float32OverflowError) Error() string {
	return fmt.Sprintf("tensor: float64 value %g at index %d overflows float32", e.Value, e.Index)
}

// Convert32 narrows src into dst (equal length), returning a typed
// *Float32OverflowError for the first finite value that would narrow to
// ±Inf. Non-finite inputs (NaN, ±Inf) pass through unchanged — rejecting
// them is the caller's health-guard policy, not a conversion concern.
func Convert32(dst []float32, src []float64) error {
	if len(dst) != len(src) {
		panic("tensor: Convert32 length mismatch")
	}
	for i, v := range src {
		f := float32(v)
		if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
			return &Float32OverflowError{Index: i, Value: v}
		}
		dst[i] = f
	}
	return nil
}

// Clamp32 narrows src into dst, saturating finite overflow to
// ±MaxFloat32 instead of failing. Non-finite inputs pass through.
func Clamp32(dst []float32, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Clamp32 length mismatch")
	}
	for i, v := range src {
		f := float32(v)
		if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
			if v > 0 {
				f = math.MaxFloat32
			} else {
				f = -math.MaxFloat32
			}
		}
		dst[i] = f
	}
}

// ConvertDense32 narrows a float64 matrix with overflow rejection.
func ConvertDense32(src *Dense) (*Dense32, error) {
	out := New32(src.Rows, src.Cols)
	if err := Convert32(out.Data, src.Data); err != nil {
		return nil, err
	}
	return out, nil
}

// ClampDense32 narrows a float64 matrix, saturating finite overflow.
func ClampDense32(src *Dense) *Dense32 {
	out := New32(src.Rows, src.Cols)
	Clamp32(out.Data, src.Data)
	return out
}

// ---- float32 forward kernels ----
//
// The float32 kernels accumulate in float32 on purpose: the point of the
// precision mode is to measure and bound what half-width arithmetic does to
// the model's answers (the verify precision oracle), not to hide it behind
// float64 accumulators.

// MatMulAcc32 computes dst += a × b without zeroing dst. Ascending-k
// accumulation, mirroring the float64 kernel's ordering contract.
func MatMulAcc32(dst, a, b *Dense32) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAcc32 shape mismatch (%dx%d)x(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += aik * brow[j]
			}
		}
	}
}

// MatMul32 computes dst = a × b.
func MatMul32(dst, a, b *Dense32) {
	dst.Zero()
	MatMulAcc32(dst, a, b)
}

// MatMulABT32 computes dst = a × bᵀ (dst is a.Rows×b.Rows) — the attention
// score kernel.
func MatMulABT32(dst, a, b *Dense32) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABT32 shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k := range arow {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddRowVecInto32 computes dst = a + v broadcast over rows (v is 1×Cols).
// dst may alias a.
func AddRowVecInto32(dst, a, v *Dense32) {
	if v.Rows != 1 || v.Cols != a.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: AddRowVecInto32 shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = arow[j] + v.Data[j]
		}
	}
}

// SoftmaxRow32 is the float32 mirror of SoftmaxRow, preserving the guarded
// masked-row semantics exactly: empty rows are a no-op, all-(-Inf) rows
// become all-zero rows (never NaN), +Inf logits split mass uniformly over
// the +Inf entries, and NaN propagates. dst and src may alias.
func SoftmaxRow32(dst, src []float32) {
	if len(src) == 0 {
		return
	}
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(float64(m), -1) {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	if math.IsInf(float64(m), 1) {
		n := 0
		for _, v := range src {
			if math.IsInf(float64(v), 1) {
				n++
			}
		}
		w := 1 / float32(n)
		for j, v := range src {
			if math.IsInf(float64(v), 1) {
				dst[j] = w
			} else {
				dst[j] = 0
			}
		}
		return
	}
	var s float32
	for j, v := range src {
		e := float32(math.Exp(float64(v - m)))
		dst[j] = e
		s += e
	}
	for j := range dst {
		dst[j] /= s
	}
}

// ---- scratch arena ----

// Arena32 is a shape-keyed checkout pool for Dense32 scratch, the float32
// mirror of the autograd tape arena's buffer pooling: Get hands out a
// possibly dirty buffer (callers fully overwrite or GetZeroed), Reset makes
// every buffer available again. Steady-state use allocates nothing. Not
// safe for concurrent use; serving pools whole engines, one per goroutine.
type Arena32 struct {
	pools map[int64][]*Dense32
	next  map[int64]int
	ints  map[int][][]int
	intN  map[int]int
}

// NewArena32 returns an empty arena.
func NewArena32() *Arena32 {
	return &Arena32{
		pools: make(map[int64][]*Dense32),
		next:  make(map[int64]int),
		ints:  make(map[int][][]int),
		intN:  make(map[int]int),
	}
}

func shapeKey32(rows, cols int) int64 { return int64(rows)<<32 | int64(uint32(cols)) }

// Get returns a rows×cols buffer with unspecified contents, valid until
// Reset.
func (a *Arena32) Get(rows, cols int) *Dense32 {
	k := shapeKey32(rows, cols)
	n := a.next[k]
	pool := a.pools[k]
	if n < len(pool) {
		a.next[k] = n + 1
		return pool[n]
	}
	d := New32(rows, cols)
	a.pools[k] = append(pool, d)
	a.next[k] = n + 1
	return d
}

// GetZeroed returns a zeroed rows×cols buffer, valid until Reset.
func (a *Arena32) GetZeroed(rows, cols int) *Dense32 {
	d := a.Get(rows, cols)
	d.Zero()
	return d
}

// Ints returns a length-n scratch int slice with unspecified contents,
// valid until Reset.
func (a *Arena32) Ints(n int) []int {
	i := a.intN[n]
	pool := a.ints[n]
	if i < len(pool) {
		a.intN[n] = i + 1
		return pool[i]
	}
	s := make([]int, n)
	a.ints[n] = append(pool, s)
	a.intN[n] = i + 1
	return s
}

// Reset recycles every buffer the arena has handed out. Outstanding
// references become invalid.
func (a *Arena32) Reset() {
	for k := range a.next {
		a.next[k] = 0
	}
	for k := range a.intN {
		a.intN[k] = 0
	}
}
