//go:build !race

package tensor

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
