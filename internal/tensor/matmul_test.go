package tensor

import (
	"math/rand"
	"testing"
)

// naiveMatMulAcc is the reference (i,k,j) triple loop the blocked kernels
// must match bit-for-bit (same ascending-k summation order per element).
func naiveMatMulAcc(dst, a, b *Dense) {
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				dst.Data[i*dst.Cols+j] += aik * b.At(k, j)
			}
		}
	}
}

func naiveATBAcc(dst, a, b *Dense) {
	for k := 0; k < a.Rows; k++ {
		for i := 0; i < a.Cols; i++ {
			aki := a.At(k, i)
			if aki == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				dst.Data[i*dst.Cols+j] += aki * b.At(k, j)
			}
		}
	}
}

func naiveABTAcc(dst, a, b *Dense) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			dst.Data[i*dst.Cols+j] += s
		}
	}
}

func bitIdentical(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %dx%d vs %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestBlockedKernelsBitIdenticalToNaive checks the blocked (and parallel)
// kernels reproduce the naive loops exactly — not just within tolerance —
// at shapes spanning the block boundaries, for several worker counts. The
// sizes deliberately exceed the parallel flop threshold in the largest case
// so the goroutine path is actually exercised.
func TestBlockedKernelsBitIdenticalToNaive(t *testing.T) {
	defer SetMatMulWorkers(1)
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 2}, {7, 64, 9}, {65, 63, 67}, {130, 200, 130},
	}
	for _, workers := range []int{1, 2, 3, 8} {
		SetMatMulWorkers(workers)
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			a := benchDense(rng, m, k)
			b := benchDense(rng, k, n)
			// Sprinkle zeros so the zero-skip branch is covered.
			for i := 0; i < len(a.Data); i += 7 {
				a.Data[i] = 0
			}

			got, want := New(m, n), New(m, n)
			MatMul(got, a, b)
			naiveMatMulAcc(want, a, b)
			bitIdentical(t, "MatMul", got, want)

			got.Fill(0.5)
			want.Fill(0.5)
			MatMulAcc(got, a, b)
			naiveMatMulAcc(want, a, b)
			bitIdentical(t, "MatMulAcc", got, want)

			b2 := benchDense(rng, m, n)
			gotT, wantT := New(k, n), New(k, n)
			gotT.Fill(0.25)
			wantT.Fill(0.25)
			MatMulATBAcc(gotT, a, b2)
			naiveATBAcc(wantT, a, b2)
			bitIdentical(t, "MatMulATBAcc", gotT, wantT)

			b3 := benchDense(rng, n, k)
			gotB, wantB := New(m, n), New(m, n)
			gotB.Fill(-0.25)
			wantB.Fill(-0.25)
			MatMulABTAcc(gotB, a, b3)
			naiveABTAcc(wantB, a, b3)
			bitIdentical(t, "MatMulABTAcc", gotB, wantB)
		}
	}
}

// TestMatMulZeroAllocs pins the kernels' allocation-free contract.
func TestMatMulZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race instrumentation allocates; alloc bounds only hold without -race")
	}
	rng := rand.New(rand.NewSource(12))
	a := benchDense(rng, 32, 24)
	b := benchDense(rng, 24, 16)
	bt := benchDense(rng, 16, 24)
	dst := New(32, 16)
	dstT := New(24, 16)
	for name, fn := range map[string]func(){
		"MatMul":       func() { MatMul(dst, a, b) },
		"MatMulAcc":    func() { MatMulAcc(dst, a, b) },
		"MatMulATBAcc": func() { MatMulATBAcc(dstT, a, dst) },
		"MatMulABTAcc": func() { MatMulABTAcc(dst, a, bt) },
	} {
		if n := testing.AllocsPerRun(10, fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
}
