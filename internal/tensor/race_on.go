//go:build race

package tensor

// RaceEnabled reports whether the race detector is compiled in.
// Allocation-bound tests skip under -race: the instrumentation itself
// allocates, so AllocsPerRun counts are meaningless there.
const RaceEnabled = true
