package tensor

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

// fuzzFloats decodes data into n float64s in a bounded range, recycling
// bytes when data is short. NaN/Inf bit patterns are mapped into the finite
// range so the differential oracles compare meaningful arithmetic; the
// dedicated softmax target covers non-finite inputs.
func fuzzFloats(data []byte, n int) []float64 {
	out := make([]float64, n)
	if len(data) == 0 {
		data = []byte{1}
	}
	var buf [8]byte
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			buf[j] = data[(i*8+j)%len(data)]
		}
		bits := binary.LittleEndian.Uint64(buf[:])
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(bits%2001)/1000 - 1
		}
		// Clamp magnitude so products stay finite.
		if v > 1e6 {
			v = 1e6
		} else if v < -1e6 {
			v = -1e6
		}
		out[i] = v
	}
	return out
}

// FuzzMatMul: the k-blocked (and optionally goroutine-parallel) MatMul must
// be bit-identical to the naive triple loop — the checkpoint/resume
// determinism guarantees depend on it. Dimensions cross the 64-wide block
// boundary so the blocked path is actually exercised.
func FuzzMatMul(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(65), uint8(70), uint8(3), []byte{0xff, 0x01, 0x80})
	f.Add(uint8(1), uint8(1), uint8(1), []byte{0})
	f.Fuzz(func(t *testing.T, mr, kr, nr uint8, data []byte) {
		m := 1 + int(mr)%70
		k := 1 + int(kr)%70
		n := 1 + int(nr)%8
		vals := fuzzFloats(data, m*k+k*n)
		a, b := New(m, k), New(k, n)
		copy(a.Data, vals[:m*k])
		copy(b.Data, vals[m*k:])

		got := New(m, n)
		MatMul(got, a, b)

		want := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				want.Set(i, j, s)
			}
		}
		for i := range got.Data {
			g, w := got.Data[i], want.Data[i]
			if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
				t.Fatalf("blocked MatMul diverges from naive loop at %d: %v vs %v (dims %dx%dx%d)", i, g, w, m, k, n)
			}
		}
	})
}

// FuzzNewCSR: CSR construction from arbitrary COO entries must produce a
// structurally valid matrix (monotone RowPtr, per-row sorted unique
// columns, duplicates summed) whose MulDense agrees with the equivalent
// dense product.
func FuzzNewCSR(f *testing.F) {
	f.Add(uint8(3), uint8(4), []byte{0, 1, 10, 2, 3, 20, 0, 1, 5})
	f.Add(uint8(1), uint8(1), []byte{})
	f.Add(uint8(8), uint8(2), []byte{7, 1, 200, 7, 1, 56, 0, 0, 1})
	// Satellite seeds for the sparse edge-case sweep: duplicate (row,col)
	// entries that must sum (including a cancellation to exactly zero),
	// interior empty rows, and unsorted column indices within one row.
	f.Add(uint8(4), uint8(4), []byte{2, 3, 138, 2, 3, 118, 1, 0, 129}) // dup (2,3): +10 + -10 sums to 0
	f.Add(uint8(6), uint8(3), []byte{5, 0, 129})                       // rows 0..4 empty, only last populated
	f.Add(uint8(2), uint8(8), []byte{1, 7, 130, 1, 0, 131, 1, 3, 132}) // row 1 columns arrive 7,0,3
	f.Add(uint8(5), uint8(5), []byte{0, 4, 140, 0, 1, 135, 0, 4, 116, 3, 2, 129, 3, 2, 127}) // unsorted + dups mixed
	f.Fuzz(func(t *testing.T, rr, cr uint8, data []byte) {
		rows := 1 + int(rr)%16
		cols := 1 + int(cr)%16
		var entries []COO
		for i := 0; i+3 <= len(data) && len(entries) < 256; i += 3 {
			entries = append(entries, COO{
				Row: int(data[i]) % rows,
				Col: int(data[i+1]) % cols,
				Val: float64(int(data[i+2]) - 128),
			})
		}
		c := NewCSR(rows, cols, entries)

		if err := c.Validate(); err != nil {
			t.Fatalf("NewCSR output fails Validate: %v", err)
		}
		if len(c.RowPtr) != rows+1 || c.RowPtr[0] != 0 || c.RowPtr[rows] != len(c.ColIdx) || len(c.ColIdx) != len(c.Val) {
			t.Fatalf("CSR structure invalid: RowPtr=%v nnz=%d vals=%d", c.RowPtr, len(c.ColIdx), len(c.Val))
		}
		for i := 0; i < rows; i++ {
			if c.RowPtr[i] > c.RowPtr[i+1] {
				t.Fatalf("RowPtr not monotone at %d: %v", i, c.RowPtr)
			}
			for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
				if c.ColIdx[p] < 0 || c.ColIdx[p] >= cols {
					t.Fatalf("column %d out of range", c.ColIdx[p])
				}
				if p > c.RowPtr[i] && c.ColIdx[p] <= c.ColIdx[p-1] {
					t.Fatalf("row %d columns not strictly sorted: %v", i, c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]])
				}
			}
		}

		// Differential: CSR×x must equal the dense sum of the COO entries.
		dense := New(rows, cols)
		for _, e := range entries {
			dense.Set(e.Row, e.Col, dense.At(e.Row, e.Col)+e.Val)
		}
		x := New(cols, 2)
		for i := range x.Data {
			x.Data[i] = float64(i%7) - 3
		}
		got, want := New(rows, 2), New(rows, 2)
		c.MulDense(got, x)
		MatMul(want, dense, x)
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("CSR MulDense diverges from dense at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	})
}

// FuzzSoftmaxRow: for any input row the guarded kernel must return either a
// probability vector (entries in [0,1], sum ≈ 1) or the documented all-zero
// fully-masked row — never NaN unless the input itself contained NaN. The
// all-(-Inf) seed is the regression for the masked-row NaN bug.
func FuzzSoftmaxRow(f *testing.F) {
	f.Add([]byte{})
	inf := make([]byte, 24)
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(inf[i*8:], math.Float64bits(math.Inf(-1)))
	}
	f.Add(inf)
	plus := make([]byte, 16)
	binary.LittleEndian.PutUint64(plus[0:], math.Float64bits(math.Inf(1)))
	binary.LittleEndian.PutUint64(plus[8:], math.Float64bits(1.0))
	f.Add(plus)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 64 {
			n = 64
		}
		src := make([]float64, n)
		hasNaN := false
		for i := 0; i < n; i++ {
			src[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
			if math.IsNaN(src[i]) {
				hasNaN = true
			}
		}
		dst := make([]float64, n)
		SoftmaxRow(dst, src)
		if hasNaN || n == 0 {
			return // NaN propagation is the contract; nothing else to check
		}
		var sum float64
		allZero := true
		for i, v := range dst {
			if math.IsNaN(v) {
				t.Fatalf("NaN output at %d for NaN-free input %v", i, src)
			}
			if v < 0 || v > 1 {
				t.Fatalf("output %v out of [0,1] at %d", v, i)
			}
			if v != 0 {
				allZero = false
			}
			sum += v
		}
		if allZero {
			return // fully masked row: documented zero-row semantics
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v for input %v", sum, src)
		}
	})
}

// FuzzNewCSRChecked: arbitrary (possibly out-of-bounds) coordinates must
// either build a CSR that validates or return a typed *CSRBoundsError
// naming the offending entry — never panic, never silently drop entries.
func FuzzNewCSRChecked(f *testing.F) {
	f.Add(uint8(3), uint8(3), []byte{2, 2, 1})       // in bounds
	f.Add(uint8(3), uint8(3), []byte{3, 0, 1})       // row == rows
	f.Add(uint8(3), uint8(3), []byte{0, 7, 1})       // col >= cols
	f.Add(uint8(0), uint8(4), []byte{0, 0, 1})       // zero rows, any entry OOB
	f.Fuzz(func(t *testing.T, rr, cr uint8, data []byte) {
		rows := int(rr) % 16
		cols := int(cr) % 16
		var entries []COO
		oob := false
		for i := 0; i+3 <= len(data) && len(entries) < 256; i += 3 {
			e := COO{Row: int(data[i]) - 8, Col: int(data[i+1]) - 8, Val: float64(data[i+2])}
			if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
				oob = true
			}
			entries = append(entries, e)
		}
		c, err := NewCSRChecked(rows, cols, entries)
		if oob {
			var be *CSRBoundsError
			if !errors.As(err, &be) {
				t.Fatalf("out-of-bounds entries accepted: err=%v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("in-bounds entries rejected: %v", err)
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("checked CSR fails Validate: %v", verr)
		}
	})
}

// FuzzConvert32: for arbitrary float64 inputs, Convert32 must error exactly
// when a finite input narrows to ±Inf, Clamp32 must never produce an Inf
// from a finite input, and both must pass non-finite inputs through.
func FuzzConvert32(f *testing.F) {
	seed := func(vals ...float64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return b
	}
	f.Add(seed(1.5, -2.5))
	f.Add(seed(math.MaxFloat32))               // largest exactly-representable
	f.Add(seed(3.4028235677973366e38))         // first float64 that rounds to +Inf
	f.Add(seed(-3.4028235677973366e38, 1))     // negative boundary
	f.Add(seed(math.Inf(1), math.NaN()))       // non-finite pass-through
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 64 {
			n = 64
		}
		src := make([]float64, n)
		for i := range src {
			src[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		wantErrAt := -1
		for i, v := range src {
			if !math.IsInf(v, 0) && !math.IsNaN(v) && math.IsInf(float64(float32(v)), 0) {
				wantErrAt = i
				break
			}
		}
		dst := make([]float32, n)
		err := Convert32(dst, src)
		if wantErrAt >= 0 {
			var oe *Float32OverflowError
			if !errors.As(err, &oe) {
				t.Fatalf("finite overflow at %d not rejected: err=%v", wantErrAt, err)
			}
			if oe.Index != wantErrAt {
				t.Fatalf("overflow index %d, want %d", oe.Index, wantErrAt)
			}
		} else if err != nil {
			t.Fatalf("unexpected conversion error: %v", err)
		} else {
			for i, v := range src {
				if float64(dst[i]) != float64(float32(v)) && !math.IsNaN(v) {
					t.Fatalf("dst[%d]=%v, want %v", i, dst[i], float32(v))
				}
			}
		}
		clamped := make([]float32, n)
		Clamp32(clamped, src)
		for i, v := range src {
			c := float64(clamped[i])
			switch {
			case math.IsNaN(v):
				if !math.IsNaN(c) {
					t.Fatalf("NaN at %d not preserved: %v", i, clamped[i])
				}
			case math.IsInf(v, 0):
				if !math.IsInf(c, int(math.Copysign(1, v))) {
					t.Fatalf("Inf at %d not preserved: %v", i, clamped[i])
				}
			default:
				if math.IsInf(c, 0) {
					t.Fatalf("finite %v clamped to Inf at %d", v, i)
				}
				if math.Abs(v) <= math.MaxFloat32 && clamped[i] != float32(v) {
					t.Fatalf("in-range %v altered by clamp: %v", v, clamped[i])
				}
			}
		}
	})
}
