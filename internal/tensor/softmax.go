package tensor

import "math"

// SoftmaxRow writes the numerically stable softmax of src into dst (the two
// may alias, enabling in-place use). It is the single row-softmax kernel
// shared by the autograd op and the fused attention forward, so masked-row
// semantics stay consistent everywhere:
//
//   - an empty row is a no-op;
//   - a fully masked row (every logit -Inf, as produced by additive masks)
//     yields an all-zero row instead of NaN — callers treat "no admissible
//     entries" as "no mass", and the softmax backward is exact for it
//     (y = 0 ⇒ dx = 0);
//   - +Inf logits receive uniform mass split over the +Inf entries (the
//     limit of the finite case), finite entries next to them get 0;
//   - NaN logits propagate NaN, which the training health guard catches.
//
// The naive exp/sum loop previously used by both call sites returned a NaN
// row for the all-masked case (exp(-Inf − -Inf) = NaN) which poisoned the
// whole backward pass a full batch before the guard tripped.
func SoftmaxRow(dst, src []float64) {
	if len(src) == 0 {
		return
	}
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	if math.IsInf(m, 1) {
		n := 0
		for _, v := range src {
			if math.IsInf(v, 1) {
				n++
			}
		}
		w := 1 / float64(n)
		for j, v := range src {
			if math.IsInf(v, 1) {
				dst[j] = w
			} else {
				dst[j] = 0
			}
		}
		return
	}
	var s float64
	for j, v := range src {
		e := math.Exp(v - m)
		dst[j] = e
		s += e
	}
	for j := range dst {
		dst[j] /= s
	}
}
