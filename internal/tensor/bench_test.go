package tensor

// Micro-benchmarks for the matmul kernels at HARP-representative shapes:
// tall-skinny activation×weight products (thousands of token rows, embed
// widths of a few dozen) and a larger square case where cache blocking and
// the parallel path matter.

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchDense(rng *rand.Rand, rows, cols int) *Dense {
	d := New(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func benchShapes() [][3]int {
	return [][3]int{
		{2048, 12, 12},  // token activations × projection (SETTRANS)
		{2048, 24, 48},  // RAU hidden layer
		{256, 256, 256}, // large square: blocked/parallel territory
	}
}

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range benchShapes() {
		a := benchDense(rng, s[0], s[1])
		bb := benchDense(rng, s[1], s[2])
		dst := New(s[0], s[2])
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(dst, a, bb)
			}
		})
	}
}

func BenchmarkMatMulATBAcc(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, s := range benchShapes() {
		a := benchDense(rng, s[0], s[1])
		bb := benchDense(rng, s[0], s[2])
		dst := New(s[1], s[2])
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulATBAcc(dst, a, bb)
			}
		})
	}
}

func BenchmarkMatMulABTAcc(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, s := range benchShapes() {
		a := benchDense(rng, s[0], s[1])
		bb := benchDense(rng, s[2], s[1])
		dst := New(s[0], s[2])
		b.Run(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulABTAcc(dst, a, bb)
			}
		})
	}
}
