package tensor

import (
	"math"
	"testing"
)

func TestSoftmaxRowOrdinary(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	SoftmaxRow(dst, src)
	var s float64
	for _, v := range dst {
		if v <= 0 || v >= 1 {
			t.Fatalf("entry %v out of (0,1)", v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("sum %v", s)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("monotonicity broken: %v", dst)
	}
}

// TestSoftmaxRowAllMasked is the regression test for the NaN bug: a fully
// masked row (all -Inf, the additive-mask convention) used to compute
// exp(-Inf − -Inf) = NaN and poison the whole tensor. It must now produce
// an all-zero row.
func TestSoftmaxRowAllMasked(t *testing.T) {
	inf := math.Inf(-1)
	src := []float64{inf, inf, inf}
	dst := []float64{9, 9, 9}
	SoftmaxRow(dst, src)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("masked row entry %d = %v, want 0", i, v)
		}
	}
}

func TestSoftmaxRowPartiallyMasked(t *testing.T) {
	inf := math.Inf(-1)
	src := []float64{inf, 0.5, inf, 0.5}
	dst := make([]float64, 4)
	SoftmaxRow(dst, src)
	want := []float64{0, 0.5, 0, 0.5}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestSoftmaxRowPlusInf(t *testing.T) {
	inf := math.Inf(1)
	src := []float64{0, inf, 3, inf}
	dst := make([]float64, 4)
	SoftmaxRow(dst, src)
	want := []float64{0, 0.5, 0, 0.5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst = %v, want %v", dst, want)
		}
	}
}

func TestSoftmaxRowEmptyAndInPlace(t *testing.T) {
	SoftmaxRow(nil, nil) // must not panic (the old kernel indexed src[0])

	row := []float64{2, 2, 2}
	SoftmaxRow(row, row) // aliasing is part of the contract
	for _, v := range row {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("in-place softmax %v", row)
		}
	}
}

func TestSoftmaxRowNaNPropagates(t *testing.T) {
	src := []float64{1, math.NaN(), 2}
	dst := make([]float64, 3)
	SoftmaxRow(dst, src)
	anyNaN := false
	for _, v := range dst {
		if math.IsNaN(v) {
			anyNaN = true
		}
	}
	if !anyNaN {
		t.Fatalf("NaN input must propagate (health guard's job to catch), got %v", dst)
	}
}
