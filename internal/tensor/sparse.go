package tensor

import "fmt"

// CSR is a compressed-sparse-row matrix used for constant structural
// operators: GCN-normalized adjacency, tunnel-edge incidence, and the like.
// CSR matrices never carry gradients; they multiply dense activations.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int
	Val        []float64
}

// COO is a coordinate-format triple used to build CSR matrices.
type COO struct {
	Row, Col int
	Val      float64
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row,col)
// entries are summed. Entries are not required to be sorted.
func NewCSR(rows, cols int, entries []COO) *CSR {
	counts := make([]int, rows+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("tensor: CSR entry (%d,%d) out of bounds %dx%d", e.Row, e.Col, rows, cols))
		}
		counts[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(entries))
	val := make([]float64, len(entries))
	next := make([]int, rows)
	copy(next, counts[:rows])
	for _, e := range entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		val[p] = e.Val
		next[e.Row]++
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: counts, ColIdx: colIdx, Val: val}
	c.sumDuplicates()
	return c
}

// sumDuplicates sorts each row by column and merges repeated column indices
// (rows are short in our graphs, so insertion sort is fine).
func (c *CSR) sumDuplicates() {
	outPtr := make([]int, c.Rows+1)
	outCol := make([]int, 0, len(c.ColIdx))
	outVal := make([]float64, 0, len(c.Val))
	for i := 0; i < c.Rows; i++ {
		start, end := c.RowPtr[i], c.RowPtr[i+1]
		cols := c.ColIdx[start:end]
		vals := c.Val[start:end]
		for a := 1; a < len(cols); a++ {
			for b := a; b > 0 && cols[b] < cols[b-1]; b-- {
				cols[b], cols[b-1] = cols[b-1], cols[b]
				vals[b], vals[b-1] = vals[b-1], vals[b]
			}
		}
		for a := 0; a < len(cols); {
			col, v := cols[a], vals[a]
			a++
			for a < len(cols) && cols[a] == col {
				v += vals[a]
				a++
			}
			outCol = append(outCol, col)
			outVal = append(outVal, v)
		}
		outPtr[i+1] = len(outCol)
	}
	c.RowPtr = outPtr
	c.ColIdx = outCol
	c.Val = outVal
}

// MulDense computes dst = C × x for dense x. dst must be C.Rows×x.Cols and
// must not alias x.
func (c *CSR) MulDense(dst, x *Dense) {
	if c.Cols != x.Rows || dst.Rows != c.Rows || dst.Cols != x.Cols {
		panic("tensor: CSR MulDense shape mismatch")
	}
	dst.Zero()
	for i := 0; i < c.Rows; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			xrow := x.Row(c.ColIdx[p])
			for j := range drow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// MulDenseT computes dst = Cᵀ × x. dst must be C.Cols×x.Cols and must not
// alias x. This is the adjoint used in backward passes.
func (c *CSR) MulDenseT(dst, x *Dense) {
	if c.Rows != x.Rows || dst.Rows != c.Cols || dst.Cols != x.Cols {
		panic("tensor: CSR MulDenseT shape mismatch")
	}
	dst.Zero()
	for i := 0; i < c.Rows; i++ {
		xrow := x.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			drow := dst.Row(c.ColIdx[p])
			for j := range xrow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// E is a convenience constructor for a COO entry.
func E(row, col int, val float64) COO { return COO{Row: row, Col: col, Val: val} }

// MulDenseTAcc computes dst += Cᵀ × x without zeroing dst first.
func (c *CSR) MulDenseTAcc(dst, x *Dense) {
	if c.Rows != x.Rows || dst.Rows != c.Cols || dst.Cols != x.Cols {
		panic("tensor: CSR MulDenseTAcc shape mismatch")
	}
	for i := 0; i < c.Rows; i++ {
		xrow := x.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			drow := dst.Row(c.ColIdx[p])
			for j := range xrow {
				drow[j] += v * xrow[j]
			}
		}
	}
}
