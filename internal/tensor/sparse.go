package tensor

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix used for constant structural
// operators: GCN-normalized adjacency, tunnel-edge incidence, and the like.
// CSR matrices never carry gradients; they multiply dense activations.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int
	Val        []float64
}

// COO is a coordinate-format triple used to build CSR matrices.
type COO struct {
	Row, Col int
	Val      float64
}

// CSRBoundsError is the typed error NewCSRChecked returns for an entry
// outside the declared shape (or a negative shape). Carrying the offending
// coordinates lets parsers attribute the failure to their input instead of
// panicking deep inside a kernel.
type CSRBoundsError struct {
	Row, Col   int // offending entry (-1,-1 for a bad shape)
	Rows, Cols int // declared shape
}

func (e *CSRBoundsError) Error() string {
	if e.Row < 0 && e.Col < 0 {
		return fmt.Sprintf("tensor: invalid CSR shape %dx%d", e.Rows, e.Cols)
	}
	return fmt.Sprintf("tensor: CSR entry (%d,%d) out of bounds %dx%d", e.Row, e.Col, e.Rows, e.Cols)
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row,col)
// entries are summed and unsorted entries are normalized (each row ends up
// with strictly increasing column indices) — COO input is never trusted to
// be canonical. Out-of-bounds entries panic; use NewCSRChecked when the
// entries come from untrusted input.
func NewCSR(rows, cols int, entries []COO) *CSR {
	c, err := NewCSRChecked(rows, cols, entries)
	if err != nil {
		panic(err.Error())
	}
	return c
}

// NewCSRChecked is NewCSR with a typed error instead of a panic for
// out-of-bounds entries or a negative shape. The same normalization
// applies: duplicates summed, columns sorted per row, empty rows valid.
func NewCSRChecked(rows, cols int, entries []COO) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, &CSRBoundsError{Row: -1, Col: -1, Rows: rows, Cols: cols}
	}
	counts := make([]int, rows+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, &CSRBoundsError{Row: e.Row, Col: e.Col, Rows: rows, Cols: cols}
		}
		counts[e.Row+1]++
	}
	for i := 0; i < rows; i++ {
		counts[i+1] += counts[i]
	}
	colIdx := make([]int, len(entries))
	val := make([]float64, len(entries))
	next := make([]int, rows)
	copy(next, counts[:rows])
	for _, e := range entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		val[p] = e.Val
		next[e.Row]++
	}
	c := &CSR{Rows: rows, Cols: cols, RowPtr: counts, ColIdx: colIdx, Val: val}
	c.sumDuplicates()
	return c, nil
}

// Validate checks the structural invariants every kernel in this file
// assumes: RowPtr has Rows+1 monotone entries bracketing ColIdx/Val, and
// each row's column indices are strictly increasing and in range. NewCSR
// output always validates; this is the defense for CSR values assembled by
// hand or deserialized.
func (c *CSR) Validate() error {
	if c.Rows < 0 || c.Cols < 0 {
		return &CSRBoundsError{Row: -1, Col: -1, Rows: c.Rows, Cols: c.Cols}
	}
	if len(c.RowPtr) != c.Rows+1 {
		return fmt.Errorf("tensor: CSR RowPtr length %d, want %d", len(c.RowPtr), c.Rows+1)
	}
	if len(c.ColIdx) != len(c.Val) {
		return fmt.Errorf("tensor: CSR ColIdx/Val length mismatch %d vs %d", len(c.ColIdx), len(c.Val))
	}
	if c.RowPtr[0] != 0 || c.RowPtr[c.Rows] != len(c.ColIdx) {
		return fmt.Errorf("tensor: CSR RowPtr bounds [%d,%d], want [0,%d]", c.RowPtr[0], c.RowPtr[c.Rows], len(c.ColIdx))
	}
	for i := 0; i < c.Rows; i++ {
		if c.RowPtr[i] > c.RowPtr[i+1] {
			return fmt.Errorf("tensor: CSR RowPtr not monotone at row %d", i)
		}
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			if c.ColIdx[p] < 0 || c.ColIdx[p] >= c.Cols {
				return &CSRBoundsError{Row: i, Col: c.ColIdx[p], Rows: c.Rows, Cols: c.Cols}
			}
			if p > c.RowPtr[i] && c.ColIdx[p] <= c.ColIdx[p-1] {
				return fmt.Errorf("tensor: CSR row %d columns not strictly increasing", i)
			}
		}
	}
	return nil
}

// sumDuplicates sorts each row by column and merges repeated column indices
// (rows are short in our graphs, so insertion sort is fine).
func (c *CSR) sumDuplicates() {
	outPtr := make([]int, c.Rows+1)
	outCol := make([]int, 0, len(c.ColIdx))
	outVal := make([]float64, 0, len(c.Val))
	for i := 0; i < c.Rows; i++ {
		start, end := c.RowPtr[i], c.RowPtr[i+1]
		cols := c.ColIdx[start:end]
		vals := c.Val[start:end]
		for a := 1; a < len(cols); a++ {
			for b := a; b > 0 && cols[b] < cols[b-1]; b-- {
				cols[b], cols[b-1] = cols[b-1], cols[b]
				vals[b], vals[b-1] = vals[b-1], vals[b]
			}
		}
		for a := 0; a < len(cols); {
			col, v := cols[a], vals[a]
			a++
			for a < len(cols) && cols[a] == col {
				v += vals[a]
				a++
			}
			outCol = append(outCol, col)
			outVal = append(outVal, v)
		}
		outPtr[i+1] = len(outCol)
	}
	c.RowPtr = outPtr
	c.ColIdx = outCol
	c.Val = outVal
}

// MulDense computes dst = C × x for dense x. dst must be C.Rows×x.Cols and
// must not alias x.
func (c *CSR) MulDense(dst, x *Dense) {
	if c.Cols != x.Rows || dst.Rows != c.Rows || dst.Cols != x.Cols {
		panic("tensor: CSR MulDense shape mismatch")
	}
	dst.Zero()
	for i := 0; i < c.Rows; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			xrow := x.Row(c.ColIdx[p])
			for j := range drow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// MulDenseT computes dst = Cᵀ × x. dst must be C.Cols×x.Cols and must not
// alias x. This is the adjoint used in backward passes.
func (c *CSR) MulDenseT(dst, x *Dense) {
	if c.Rows != x.Rows || dst.Rows != c.Cols || dst.Cols != x.Cols {
		panic("tensor: CSR MulDenseT shape mismatch")
	}
	dst.Zero()
	for i := 0; i < c.Rows; i++ {
		xrow := x.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			drow := dst.Row(c.ColIdx[p])
			for j := range xrow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Val) }

// E is a convenience constructor for a COO entry.
func E(row, col int, val float64) COO { return COO{Row: row, Col: col, Val: val} }

// MulDenseAcc computes dst += C × x without zeroing dst first — the
// adjoint of MulDenseT, used by the CSRMulT backward.
func (c *CSR) MulDenseAcc(dst, x *Dense) {
	if c.Cols != x.Rows || dst.Rows != c.Rows || dst.Cols != x.Cols {
		panic("tensor: CSR MulDenseAcc shape mismatch")
	}
	for i := 0; i < c.Rows; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			xrow := x.Row(c.ColIdx[p])
			for j := range drow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// MulDenseTAcc computes dst += Cᵀ × x without zeroing dst first.
func (c *CSR) MulDenseTAcc(dst, x *Dense) {
	if c.Rows != x.Rows || dst.Rows != c.Cols || dst.Cols != x.Cols {
		panic("tensor: CSR MulDenseTAcc shape mismatch")
	}
	for i := 0; i < c.Rows; i++ {
		xrow := x.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			drow := dst.Row(c.ColIdx[p])
			for j := range xrow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// ---- float32 sparse mirror ----

// CSR32 is the float32 mirror of CSR for the serving-precision path: same
// structure (shared index layout semantics), narrowed values. Like CSR it
// carries no gradients; it multiplies float32 activations.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float32
}

// Convert32 narrows the values with overflow rejection. The index slices
// are aliased, not copied: CSR matrices are immutable once built.
func (c *CSR) Convert32() (*CSR32, error) {
	val := make([]float32, len(c.Val))
	if err := Convert32(val, c.Val); err != nil {
		return nil, err
	}
	return &CSR32{Rows: c.Rows, Cols: c.Cols, RowPtr: c.RowPtr, ColIdx: c.ColIdx, Val: val}, nil
}

// Clamp32 narrows the values, saturating finite overflow to ±MaxFloat32.
// Index slices are aliased as in Convert32.
func (c *CSR) Clamp32() *CSR32 {
	val := make([]float32, len(c.Val))
	Clamp32(val, c.Val)
	return &CSR32{Rows: c.Rows, Cols: c.Cols, RowPtr: c.RowPtr, ColIdx: c.ColIdx, Val: val}
}

// MulDense32 computes dst = C × x for dense float32 x. dst must be
// C.Rows×x.Cols and must not alias x.
func (c *CSR32) MulDense32(dst, x *Dense32) {
	if c.Cols != x.Rows || dst.Rows != c.Rows || dst.Cols != x.Cols {
		panic("tensor: CSR32 MulDense32 shape mismatch")
	}
	dst.Zero()
	for i := 0; i < c.Rows; i++ {
		drow := dst.Row(i)
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			v := c.Val[p]
			xrow := x.Row(c.ColIdx[p])
			for j := range drow {
				drow[j] += v * xrow[j]
			}
		}
	}
}

// NNZ returns the number of stored entries.
func (c *CSR32) NNZ() int { return len(c.Val) }

// IsFinite reports whether every stored value is finite — the cheap
// structural health check the float32 engine runs after clamped
// conversions (a NaN capacity would otherwise surface as NaN splits much
// later).
func (c *CSR32) IsFinite() bool {
	for _, v := range c.Val {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
