// Package tensor provides dense, row-major 2-D float64 matrices and the
// numeric kernels used by the autograd engine and neural layers.
//
// The package is intentionally minimal: HARP and the baseline models only
// need 2-D algebra (vectors are 1×n or n×1 matrices). All kernels are
// allocation-free when the caller supplies the destination, which keeps the
// training loops garbage-friendly.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix with Rows×Cols entries.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-initialized Rows×Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows×Cols matrix.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether a and b have identical dimensions.
func SameShape(a, b *Dense) bool { return a.Rows == b.Rows && a.Cols == b.Cols }

// MatMul computes dst = a × b. dst must be a.Rows×b.Cols and must not alias
// a or b. The kernel is k-blocked (and optionally goroutine-parallel, see
// SetMatMulWorkers) but accumulates each element's terms in ascending-k
// order, so results are bit-identical across block and worker settings.
func MatMul(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)x(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	dst.Zero()
	matMulAccImpl(dst, a, b)
}

// MatMulATB computes dst = aᵀ × b (dst is a.Cols×b.Cols).
func MatMulATB(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATB shape mismatch")
	}
	dst.Zero()
	atbAccImpl(dst, a, b)
}

// MatMulABT computes dst = a × bᵀ (dst is a.Rows×b.Rows).
func MatMulABT(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABT shape mismatch")
	}
	dst.Zero()
	abtAccImpl(dst, a, b)
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Dense) {
	checkSame3(dst, a, b, "AddInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes dst = a - b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Dense) {
	checkSame3(dst, a, b, "SubInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// MulInto computes dst = a ⊙ b (Hadamard). dst may alias a or b.
func MulInto(dst, a, b *Dense) {
	checkSame3(dst, a, b, "MulInto")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}

// ScaleInto computes dst = s·a. dst may alias a.
func ScaleInto(dst, a *Dense, s float64) {
	if !SameShape(dst, a) {
		panic("tensor: ScaleInto shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = s * a.Data[i]
	}
}

// AxpyInto computes dst += s·a.
func AxpyInto(dst, a *Dense, s float64) {
	if !SameShape(dst, a) {
		panic("tensor: AxpyInto shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

// AddRowVecInto computes dst = a + 1·vᵀ, broadcasting the 1×Cols row vector v
// over every row of a.
func AddRowVecInto(dst, a, v *Dense) {
	if v.Rows != 1 || v.Cols != a.Cols || !SameShape(dst, a) {
		panic("tensor: AddRowVecInto shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = arow[j] + v.Data[j]
		}
	}
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Data[j*out.Cols+i] = a.Data[i*a.Cols+j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Max returns the maximum element and its flat index. It panics on an empty
// matrix.
func (m *Dense) Max() (float64, int) {
	if len(m.Data) == 0 {
		panic("tensor: Max of empty matrix")
	}
	best, idx := m.Data[0], 0
	for i, v := range m.Data {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Norm2 returns the Frobenius norm.
func (m *Dense) Norm2() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and all entries within
// tol of one another.
func Equal(a, b *Dense, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func checkSame3(a, b, c *Dense, op string) {
	if !SameShape(a, b) || !SameShape(b, c) {
		panic("tensor: " + op + " shape mismatch")
	}
}

// MatMulAcc computes dst += a × b without zeroing dst first.
func MatMulAcc(dst, a, b *Dense) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("tensor: MatMulAcc shape mismatch")
	}
	matMulAccImpl(dst, a, b)
}

// MatMulATBAcc computes dst += aᵀ × b without zeroing dst first.
func MatMulATBAcc(dst, a, b *Dense) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATBAcc shape mismatch")
	}
	atbAccImpl(dst, a, b)
}

// MatMulABTAcc computes dst += a × bᵀ without zeroing dst first.
func MatMulABTAcc(dst, a, b *Dense) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulABTAcc shape mismatch")
	}
	abtAccImpl(dst, a, b)
}
