package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMatMul is the reference triple loop in (i,j,k) order.
func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b := randDense(rng, m, k), randDense(rng, k, n)
		got := New(m, n)
		MatMul(got, a, b)
		want := naiveMatMul(a, b)
		if !Equal(got, want, 1e-12) {
			t.Fatalf("trial %d: MatMul mismatch for %dx%d x %dx%d", trial, m, k, k, n)
		}
	}
}

func TestMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randDense(rng, 7, 4), randDense(rng, 7, 5)
	got := New(4, 5)
	MatMulATB(got, a, b)
	want := naiveMatMul(Transpose(a), b)
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulATB != naive(aT x b)")
	}
}

func TestMatMulABT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randDense(rng, 6, 4), randDense(rng, 5, 4)
	got := New(6, 5)
	MatMulABT(got, a, b)
	want := naiveMatMul(a, Transpose(b))
	if !Equal(got, want, 1e-12) {
		t.Fatal("MatMulABT != naive(a x bT)")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	dst := New(2, 2)
	AddInto(dst, a, b)
	if dst.At(1, 1) != 44 {
		t.Fatalf("AddInto got %v", dst.Data)
	}
	SubInto(dst, b, a)
	if dst.At(0, 0) != 9 {
		t.Fatalf("SubInto got %v", dst.Data)
	}
	MulInto(dst, a, b)
	if dst.At(1, 0) != 90 {
		t.Fatalf("MulInto got %v", dst.Data)
	}
	ScaleInto(dst, a, 3)
	if dst.At(0, 1) != 6 {
		t.Fatalf("ScaleInto got %v", dst.Data)
	}
	AxpyInto(dst, a, 1) // dst = 3a + a = 4a
	if dst.At(1, 1) != 16 {
		t.Fatalf("AxpyInto got %v", dst.Data)
	}
}

func TestAddRowVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 1, 1, 2, 2, 2})
	v := FromSlice(1, 3, []float64{10, 20, 30})
	dst := New(2, 3)
	AddRowVecInto(dst, a, v)
	want := FromSlice(2, 3, []float64{11, 21, 31, 12, 22, 32})
	if !Equal(dst, want, 0) {
		t.Fatalf("AddRowVecInto got %v", dst.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		return Equal(Transpose(Transpose(m)), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAndSum(t *testing.T) {
	m := FromSlice(2, 2, []float64{-5, 3, 7, 1})
	v, idx := m.Max()
	if v != 7 || idx != 2 {
		t.Fatalf("Max got %v at %d", v, idx)
	}
	if m.Sum() != 6 {
		t.Fatalf("Sum got %v", m.Sum())
	}
}

func TestNorm2(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if math.Abs(m.Norm2()-5) > 1e-12 {
		t.Fatalf("Norm2 got %v", m.Norm2())
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(2, 2))
}

func TestCSRMulDense(t *testing.T) {
	// C = [[1 0 2],[0 3 0]]
	c := NewCSR(2, 3, []COO{{0, 0, 1}, {0, 2, 2}, {1, 1, 3}})
	x := FromSlice(3, 2, []float64{1, 10, 2, 20, 3, 30})
	dst := New(2, 2)
	c.MulDense(dst, x)
	want := FromSlice(2, 2, []float64{7, 70, 6, 60})
	if !Equal(dst, want, 1e-12) {
		t.Fatalf("CSR MulDense got %v", dst.Data)
	}
}

func TestCSRDuplicateEntriesSummed(t *testing.T) {
	c := NewCSR(1, 2, []COO{{0, 1, 2}, {0, 1, 3}, {0, 0, 1}})
	if c.NNZ() != 2 {
		t.Fatalf("expected duplicates merged, nnz=%d", c.NNZ())
	}
	x := FromSlice(2, 1, []float64{1, 1})
	dst := New(1, 1)
	c.MulDense(dst, x)
	if dst.At(0, 0) != 6 {
		t.Fatalf("got %v want 6", dst.At(0, 0))
	}
}

func TestCSRTransposeAdjoint(t *testing.T) {
	// <Cx, y> == <x, CTy> is the adjoint identity that backward passes rely on.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 2+rng.Intn(6), 2+rng.Intn(6)
		var entries []COO
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.4 {
					entries = append(entries, COO{i, j, rng.NormFloat64()})
				}
			}
		}
		c := NewCSR(rows, cols, entries)
		x := randDense(rng, cols, 1)
		y := randDense(rng, rows, 1)
		cx := New(rows, 1)
		c.MulDense(cx, x)
		cty := New(cols, 1)
		c.MulDenseT(cty, y)
		var lhs, rhs float64
		for i := range cx.Data {
			lhs += cx.Data[i] * y.Data[i]
		}
		for i := range x.Data {
			rhs += x.Data[i] * cty.Data[i]
		}
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
		}
	}
}
