package tensor

import (
	"runtime"
	"sync"
)

// Cache-blocking factors for the matmul kernels. Blocks are chosen so the
// streamed panel of the second operand (matmulKBlock rows of B, or
// matmulJBlock rows of B for the ABᵀ kernel) stays resident in L1/L2 while
// an output row panel is swept. Blocking never reorders the per-element
// summation: every output element still accumulates its k-terms in
// ascending order, so blocked results are bit-identical to the naive
// triple loop — a property the checkpoint/resume determinism tests rely on.
const (
	matmulKBlock = 64
	matmulJBlock = 64

	// parallelFlopThreshold gates the goroutine-parallel path: kernels
	// below this many multiply-adds always run serially, because goroutine
	// hand-off costs more than the arithmetic. HARP's per-layer products
	// on WAN-sized inputs sit either clearly below (embed-width GEMMs) or
	// clearly above (token-matrix products on large topologies) this line.
	parallelFlopThreshold = 1 << 21
)

var matmulWorkers = 1

// SetMatMulWorkers sets how many goroutines large matmul kernels may use.
// n <= 0 selects GOMAXPROCS. The default is 1 (fully serial): training
// already parallelizes across samples in ParallelTrainStep, and nesting
// goroutine fan-out inside each worker's kernels oversubscribes the
// machine. Call it once at startup (e.g. for single-sample inference on a
// big topology); it must not be called concurrently with running kernels.
//
// Worker count does not affect results: rows are partitioned, each output
// element is computed by exactly one goroutine in the same ascending-k
// order, so results are bit-identical for every worker count.
func SetMatMulWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	matmulWorkers = n
}

// MatMulWorkers returns the current matmul worker count.
func MatMulWorkers() int { return matmulWorkers }

// parWorkers returns how many goroutines a kernel over `rows` output rows
// and `flops` multiply-adds should use (1 = run serially). Kept separate
// from the fan-out so the serial fast path below stays closure-free: the
// hot per-op kernels must not allocate.
func parWorkers(rows, flops int) int {
	w := matmulWorkers
	if w > rows {
		w = rows
	}
	if flops < parallelFlopThreshold {
		return 1
	}
	return w
}

// fanOutRows splits [0, rows) into w contiguous chunks and runs fn on each
// in its own goroutine. Only called on the large-kernel path, where the
// closure allocation is noise.
func fanOutRows(w, rows int, fn func(lo, hi int)) {
	chunk := (rows + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulAccImpl: dst += a × b.
func matMulAccImpl(dst, a, b *Dense) {
	if w := parWorkers(a.Rows, a.Rows*a.Cols*b.Cols); w > 1 {
		fanOutRows(w, a.Rows, func(lo, hi int) { matMulAccRange(dst, a, b, lo, hi) })
		return
	}
	matMulAccRange(dst, a, b, 0, a.Rows)
}

// matMulAccRange accumulates output rows [lo, hi) of a × b into dst,
// k-blocked, (k-block, i, k, j) order.
func matMulAccRange(dst, a, b *Dense, lo, hi int) {
	for k0 := 0; k0 < a.Cols; k0 += matmulKBlock {
		k1 := min(k0+matmulKBlock, a.Cols)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for k := k0; k < k1; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range drow {
					drow[j] += aik * brow[j]
				}
			}
		}
	}
}

// atbAccImpl: dst += aᵀ × b. The summation index is a's row k; output rows
// (a's columns) partition across workers, and each element accumulates k in
// ascending order exactly as the serial kernel does.
func atbAccImpl(dst, a, b *Dense) {
	if w := parWorkers(a.Cols, a.Rows*a.Cols*b.Cols); w > 1 {
		fanOutRows(w, a.Cols, func(lo, hi int) { atbAccRange(dst, a, b, lo, hi) })
		return
	}
	atbAccRange(dst, a, b, 0, a.Cols)
}

func atbAccRange(dst, a, b *Dense, lo, hi int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			aki := arow[i]
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range drow {
				drow[j] += aki * brow[j]
			}
		}
	}
}

// abtAccImpl: dst += a × bᵀ, j-blocked so a panel of b rows stays cached
// while the output rows sweep. Each dot product accumulates in a register
// over the full k range before the single add into dst, preserving the
// serial kernel's rounding exactly.
func abtAccImpl(dst, a, b *Dense) {
	if w := parWorkers(a.Rows, a.Rows*a.Cols*b.Rows); w > 1 {
		fanOutRows(w, a.Rows, func(lo, hi int) { abtAccRange(dst, a, b, lo, hi) })
		return
	}
	abtAccRange(dst, a, b, 0, a.Rows)
}

func abtAccRange(dst, a, b *Dense, lo, hi int) {
	for j0 := 0; j0 < b.Rows; j0 += matmulJBlock {
		j1 := min(j0+matmulJBlock, b.Rows)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := j0; j < j1; j++ {
				brow := b.Row(j)
				var s float64
				for k, av := range arow {
					s += av * brow[k]
				}
				drow[j] += s
			}
		}
	}
}
