package tensor

import (
	"errors"
	"math"
	"testing"
)

// firstOverflow64 is the smallest positive float64 that narrows to +Inf in
// float32 under round-to-nearest: the midpoint between MaxFloat32 and the
// next (unrepresentable) float32 step. Everything strictly below it rounds
// to MaxFloat32; it and everything above round to +Inf.
const firstOverflow64 = 3.4028235677973366e38

func TestConvert32ExactBoundary(t *testing.T) {
	// Just-representable values must convert cleanly.
	ok := []float64{0, 1.5, -2.25, math.MaxFloat32, -math.MaxFloat32,
		math.Nextafter(firstOverflow64, 0), -math.Nextafter(firstOverflow64, 0)}
	dst := make([]float32, len(ok))
	if err := Convert32(dst, ok); err != nil {
		t.Fatalf("in-range values rejected: %v", err)
	}
	if dst[3] != math.MaxFloat32 || dst[5] != math.MaxFloat32 {
		t.Fatalf("boundary values altered: %v %v", dst[3], dst[5])
	}

	// The first overflowing float64 (and beyond) must be rejected with the
	// typed error naming the index.
	for _, v := range []float64{firstOverflow64, -firstOverflow64, 1e39, math.MaxFloat64} {
		src := []float64{1, v}
		err := Convert32(make([]float32, 2), src)
		var oe *Float32OverflowError
		if !errors.As(err, &oe) {
			t.Fatalf("overflowing %g not rejected: err=%v", v, err)
		}
		if oe.Index != 1 || oe.Value != v {
			t.Fatalf("error carries %d/%g, want 1/%g", oe.Index, oe.Value, v)
		}
	}

	// Non-finite inputs are pass-through, not overflow.
	nf := []float64{math.Inf(1), math.Inf(-1), math.NaN()}
	dst = make([]float32, 3)
	if err := Convert32(dst, nf); err != nil {
		t.Fatalf("non-finite pass-through rejected: %v", err)
	}
	if !math.IsInf(float64(dst[0]), 1) || !math.IsInf(float64(dst[1]), -1) || !math.IsNaN(float64(dst[2])) {
		t.Fatalf("non-finite not preserved: %v", dst)
	}
}

func TestClamp32Saturates(t *testing.T) {
	src := []float64{firstOverflow64, -firstOverflow64, 1e300, -1e300, 2.5, math.Inf(1), math.NaN()}
	dst := make([]float32, len(src))
	Clamp32(dst, src)
	if dst[0] != math.MaxFloat32 || dst[1] != -math.MaxFloat32 ||
		dst[2] != math.MaxFloat32 || dst[3] != -math.MaxFloat32 {
		t.Fatalf("finite overflow not saturated: %v", dst[:4])
	}
	if dst[4] != 2.5 {
		t.Fatalf("in-range value altered: %v", dst[4])
	}
	if !math.IsInf(float64(dst[5]), 1) || !math.IsNaN(float64(dst[6])) {
		t.Fatalf("non-finite not preserved: %v %v", dst[5], dst[6])
	}
}

// TestSoftmaxRow32MaskedSemantics pins the PR-4 masked-softmax contract on
// the float32 mirror: empty row no-op, all-(-Inf) row becomes all-zero
// (never NaN), +Inf logits split uniformly, NaN propagates, and ordinary
// rows are probability vectors.
func TestSoftmaxRow32MaskedSemantics(t *testing.T) {
	SoftmaxRow32(nil, nil) // empty row must not panic

	inf := float32(math.Inf(1))
	ninf := float32(math.Inf(-1))
	nan := float32(math.NaN())

	allMasked := []float32{ninf, ninf, ninf}
	SoftmaxRow32(allMasked, allMasked)
	for i, v := range allMasked {
		if v != 0 {
			t.Fatalf("all-(-Inf) row entry %d = %v, want 0", i, v)
		}
	}

	plus := []float32{inf, 1, inf, ninf}
	SoftmaxRow32(plus, plus)
	want := []float32{0.5, 0, 0.5, 0}
	for i := range plus {
		if plus[i] != want[i] {
			t.Fatalf("+Inf row = %v, want %v", plus, want)
		}
	}

	withNaN := []float32{1, nan, 2}
	SoftmaxRow32(withNaN, withNaN)
	hasNaN := false
	for _, v := range withNaN {
		if math.IsNaN(float64(v)) {
			hasNaN = true
		}
	}
	if !hasNaN {
		t.Fatalf("NaN input did not propagate: %v", withNaN)
	}

	row := []float32{0.5, -1, 3}
	SoftmaxRow32(row, row)
	var sum float32
	for _, v := range row {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", row)
		}
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-6 {
		t.Fatalf("probabilities sum to %v", sum)
	}

	// Cross-check against the float64 kernel on the same logits.
	logits := []float64{-2, 0.25, 1.75, -0.5}
	d64 := make([]float64, len(logits))
	SoftmaxRow(d64, logits)
	l32 := make([]float32, len(logits))
	Clamp32(l32, logits)
	SoftmaxRow32(l32, l32)
	for i := range logits {
		if math.Abs(float64(l32[i])-d64[i]) > 1e-6 {
			t.Fatalf("float32 softmax diverges at %d: %v vs %v", i, l32[i], d64[i])
		}
	}
}

func TestDense32KernelsMatchFloat64(t *testing.T) {
	a64 := New(5, 7)
	b64 := New(7, 3)
	for i := range a64.Data {
		a64.Data[i] = math.Sin(float64(i)*1.3) * 2
	}
	for i := range b64.Data {
		b64.Data[i] = math.Cos(float64(i)*0.7) * 3
	}
	a32, err := ConvertDense32(a64)
	if err != nil {
		t.Fatal(err)
	}
	b32, err := ConvertDense32(b64)
	if err != nil {
		t.Fatal(err)
	}

	want := New(5, 3)
	MatMul(want, a64, b64)
	got := New32(5, 3)
	MatMul32(got, a32, b32)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i])-want.Data[i]) > 1e-4 {
			t.Fatalf("MatMul32 diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	// ABT against explicit transpose product.
	c64 := New(4, 7)
	for i := range c64.Data {
		c64.Data[i] = float64(i%5) - 2
	}
	c32, _ := ConvertDense32(c64)
	gotABT := New32(5, 4)
	MatMulABT32(gotABT, a32, c32)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 7; k++ {
				s += a64.At(i, k) * c64.At(j, k)
			}
			if math.Abs(float64(gotABT.At(i, j))-s) > 1e-4 {
				t.Fatalf("MatMulABT32 diverges at (%d,%d): %v vs %v", i, j, gotABT.At(i, j), s)
			}
		}
	}

	// Row-vector broadcast add.
	v32 := New32(1, 3)
	v32.Data[0], v32.Data[1], v32.Data[2] = 1, -2, 3
	out := New32(5, 3)
	AddRowVecInto32(out, got, v32)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			if out.At(i, j) != got.At(i, j)+v32.Data[j] {
				t.Fatalf("AddRowVecInto32 wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestCSR32MatchesFloat64(t *testing.T) {
	entries := []COO{E(0, 1, 2), E(2, 0, -1.5), E(2, 3, 4), E(1, 2, 0.25), E(0, 1, 1)}
	c := NewCSR(3, 4, entries)
	c32, err := c.Convert32()
	if err != nil {
		t.Fatal(err)
	}
	if c32.NNZ() != c.NNZ() {
		t.Fatalf("NNZ mismatch: %d vs %d", c32.NNZ(), c.NNZ())
	}
	if !c32.IsFinite() {
		t.Fatal("finite CSR reported non-finite")
	}
	x64 := New(4, 2)
	for i := range x64.Data {
		x64.Data[i] = float64(i) - 3.5
	}
	x32, _ := ConvertDense32(x64)
	want := New(3, 2)
	c.MulDense(want, x64)
	got := New32(3, 2)
	c32.MulDense32(got, x32)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i])-want.Data[i]) > 1e-5 {
			t.Fatalf("CSR32 MulDense32 diverges at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	// Overflowing values must be rejected by Convert32 and saturated by Clamp32.
	big := NewCSR(1, 1, []COO{E(0, 0, 1e300)})
	if _, err := big.Convert32(); err == nil {
		t.Fatal("overflowing CSR value accepted by Convert32")
	}
	clamped := big.Clamp32()
	if clamped.Val[0] != math.MaxFloat32 {
		t.Fatalf("Clamp32 did not saturate: %v", clamped.Val[0])
	}
	if !clamped.IsFinite() {
		t.Fatal("clamped CSR reported non-finite")
	}
}

func TestCSRCheckedTypedErrors(t *testing.T) {
	cases := []struct {
		rows, cols int
		entries    []COO
	}{
		{-1, 3, nil},
		{3, -2, nil},
		{3, 3, []COO{E(3, 0, 1)}},
		{3, 3, []COO{E(0, 3, 1)}},
		{3, 3, []COO{E(-1, 0, 1)}},
		{0, 0, []COO{E(0, 0, 1)}},
	}
	for _, tc := range cases {
		_, err := NewCSRChecked(tc.rows, tc.cols, tc.entries)
		var be *CSRBoundsError
		if !errors.As(err, &be) {
			t.Fatalf("NewCSRChecked(%d,%d,%v) err=%v, want *CSRBoundsError", tc.rows, tc.cols, tc.entries, err)
		}
	}
	// Empty matrix with no entries is legal.
	c, err := NewCSRChecked(0, 0, nil)
	if err != nil || c.NNZ() != 0 {
		t.Fatalf("empty CSR rejected: %v", err)
	}
}

func TestCSRValidateCatchesCorruption(t *testing.T) {
	good := NewCSR(2, 3, []COO{E(0, 0, 1), E(0, 2, 2), E(1, 1, 3)})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	corrupt := []func(*CSR){
		func(c *CSR) { c.RowPtr = c.RowPtr[:len(c.RowPtr)-1] },
		func(c *CSR) { c.RowPtr[1] = 5 },
		func(c *CSR) { c.ColIdx[1] = 0 }, // duplicates column 0 in row 0
		func(c *CSR) { c.ColIdx[2] = 9 },
		func(c *CSR) { c.Val = c.Val[:2] },
	}
	for i, mut := range corrupt {
		c := NewCSR(2, 3, []COO{E(0, 0, 1), E(0, 2, 2), E(1, 1, 3)})
		mut(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("corruption %d not caught", i)
		}
	}
}

func TestMulDenseAccAccumulates(t *testing.T) {
	c := NewCSR(2, 3, []COO{E(0, 0, 2), E(1, 2, -1)})
	x := New(3, 2)
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	base := New(2, 2)
	for i := range base.Data {
		base.Data[i] = 10
	}
	dst := New(2, 2)
	copy(dst.Data, base.Data)
	c.MulDenseAcc(dst, x)
	prod := New(2, 2)
	c.MulDense(prod, x)
	for i := range dst.Data {
		if dst.Data[i] != base.Data[i]+prod.Data[i] {
			t.Fatalf("MulDenseAcc wrong at %d: %v, want %v", i, dst.Data[i], base.Data[i]+prod.Data[i])
		}
	}
}

func TestArena32Reuse(t *testing.T) {
	a := NewArena32()
	b1 := a.Get(4, 5)
	b2 := a.Get(4, 5)
	if b1 == b2 {
		t.Fatal("arena returned the same buffer twice before Reset")
	}
	b1.Data[0] = 42
	a.Reset()
	r1 := a.Get(4, 5)
	r2 := a.Get(4, 5)
	if r1 != b1 || r2 != b2 {
		t.Fatal("arena did not recycle buffers after Reset")
	}
	z := a.GetZeroed(4, 5)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned dirty buffer")
		}
	}

	// Steady-state checkout must not allocate.
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		a.Get(4, 5)
		a.Get(4, 5)
		a.Reset()
	})
	if allocs > 0 {
		t.Fatalf("steady-state arena checkout allocates %.1f/op", allocs)
	}
}

func TestWidenRoundTrip(t *testing.T) {
	src := New(3, 3)
	for i := range src.Data {
		src.Data[i] = math.Sqrt(float64(i)) * 1.0625
	}
	d32, err := ConvertDense32(src)
	if err != nil {
		t.Fatal(err)
	}
	wide := d32.ToDense()
	back, err := ConvertDense32(wide)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back.Data {
		if back.Data[i] != d32.Data[i] {
			t.Fatalf("widen/narrow round trip not bit-stable at %d", i)
		}
	}
	into := New(3, 3)
	d32.WidenInto(into)
	for i := range into.Data {
		if into.Data[i] != wide.Data[i] {
			t.Fatalf("WidenInto diverges from ToDense at %d", i)
		}
	}
}
