package dote

import (
	"math"
	"testing"

	"harpte/internal/autograd"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/tunnels"
)

func twoPathProblem() *te.Problem {
	g := topology.New("twopath", 3)
	g.AddBidirectional(0, 1, 10)
	g.AddBidirectional(0, 2, 5)
	g.AddBidirectional(2, 1, 5)
	g.EdgeNodes = []int{0, 1}
	return te.NewProblem(g, tunnels.Compute(g, 2))
}

func demandVec(p *te.Problem, src, dst int, v float64) *tensor.Dense {
	d := tensor.New(p.NumFlows(), 1)
	d.Data[p.Tunnels.FlowIndex(src, dst)] = v
	return d
}

func TestForwardIsDistribution(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.NumFlows(), p.Tunnels.K)
	d := demandVec(p, 0, 1, 5)
	splits := m.Splits(d)
	if splits.Rows != p.NumFlows() || splits.Cols != 2 {
		t.Fatalf("shape %dx%d", splits.Rows, splits.Cols)
	}
	for f := 0; f < splits.Rows; f++ {
		var s float64
		for _, v := range splits.Row(f) {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", f, s)
		}
	}
}

func TestTrainingApproachesOptimal(t *testing.T) {
	p := twoPathProblem()
	cfg := DefaultConfig()
	cfg.Hidden = []int{32}
	m := New(cfg, p.NumFlows(), p.Tunnels.K)
	d := demandVec(p, 0, 1, 9)
	opt := lp.Solve(p, d)
	samples := []Sample{{Problem: p, Demand: d}}
	m.Fit(samples, samples, 200, 5e-3, 1, 1)
	mlu := p.MLU(m.Splits(d), d)
	if te.NormMLU(mlu, opt.MLU) > 1.10 {
		t.Fatalf("DOTE NormMLU %.3f after training", te.NormMLU(mlu, opt.MLU))
	}
}

// TestIgnoresCapacityChanges documents DOTE's central limitation (§2.3):
// its output is a function of demands only, so capacity changes cannot
// change its splits.
func TestIgnoresCapacityChanges(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.NumFlows(), p.Tunnels.K)
	d := demandVec(p, 0, 1, 5)
	s1 := m.Splits(d)
	// DOTE has no topology input at all; same demand → same output,
	// regardless of what happened to the network.
	s2 := m.Splits(d)
	if !tensor.Equal(s1, s2, 0) {
		t.Fatal("DOTE output must depend only on the demand vector")
	}
}

// TestSensitiveToInputOrder documents the §2.3 transpose/ordering issue:
// permuting the demand vector entries (e.g. feeding the transpose of the
// TM) changes DOTE's output in an uncontrolled way.
func TestSensitiveToInputOrder(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.NumFlows(), p.Tunnels.K)
	f01 := p.Tunnels.FlowIndex(0, 1)
	f10 := p.Tunnels.FlowIndex(1, 0)
	d := tensor.New(p.NumFlows(), 1)
	d.Data[f01] = 7
	d.Data[f10] = 2
	s1 := m.Splits(d)
	// Swap the two demands (transpose of the TM).
	d.Data[f01], d.Data[f10] = d.Data[f10], d.Data[f01]
	s2 := m.Splits(d)
	// An invariant model would swap rows f01 and f10; DOTE generally does
	// not (its MLP treats inputs positionally). We check the weaker, always
	// true property that the output changed at all, then that it is NOT the
	// row swap of s1 (which holds for an untrained positional MLP).
	if tensor.Equal(s1, s2, 1e-12) {
		t.Fatal("output unchanged — vacuous test")
	}
	swapped := s1.Clone()
	r1 := append([]float64(nil), s1.Row(f01)...)
	copy(swapped.Row(f01), s1.Row(f10))
	copy(swapped.Row(f10), r1)
	if tensor.Equal(s2, swapped, 1e-9) {
		t.Log("note: output happened to be permutation-equivariant here")
	}
}

func TestTrainStepReducesLoss(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.NumFlows(), p.Tunnels.K)
	d := demandVec(p, 0, 1, 9)
	s := Sample{Problem: p, Demand: d}
	opt := autograd.NewAdam(3e-3)
	first := m.TrainStep(opt, []Sample{s})
	var last float64
	for i := 0; i < 100; i++ {
		last = m.TrainStep(opt, []Sample{s})
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestNumParamsLarge(t *testing.T) {
	// DOTE on a GEANT-sized problem must be orders of magnitude larger than
	// HARP (the paper: 1M vs 21K).
	m := New(DefaultConfig(), 462, 8)
	if m.NumParams() < 200_000 {
		t.Fatalf("unexpectedly small DOTE: %d params", m.NumParams())
	}
}

func TestForwardPanicsOnWrongShape(t *testing.T) {
	m := New(DefaultConfig(), 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Splits(tensor.New(3, 1))
}

func TestMeanMLUUsesLossDemand(t *testing.T) {
	p := twoPathProblem()
	m := New(DefaultConfig(), p.NumFlows(), p.Tunnels.K)
	pred := demandVec(p, 0, 1, 1)
	truth := demandVec(p, 0, 1, 10)
	got := m.MeanMLU([]Sample{{Problem: p, Demand: pred, LossDemand: truth}})
	want := p.MLU(m.Splits(pred), truth)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanMLU %v want %v", got, want)
	}
}

func TestHistoryModelLearnsToAnticipate(t *testing.T) {
	// A deterministic alternating traffic pattern: the history reveals which
	// of two matrices comes next; the history model can specialize, the
	// single-TM model cannot see the future at all.
	p := twoPathProblem()
	f01 := p.Tunnels.FlowIndex(0, 1)
	low := tensor.New(p.NumFlows(), 1)
	low.Data[f01] = 2
	high := tensor.New(p.NumFlows(), 1)
	high.Data[f01] = 12
	var series []*tensor.Dense
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			series = append(series, low)
		} else {
			series = append(series, high)
		}
	}
	cfg := DefaultConfig()
	cfg.Hidden = []int{32}
	m := NewHistory(cfg, p.NumFlows(), p.Tunnels.K, 2)
	best := m.FitSeries(p, series, 60, 5e-3, 1)
	if best > 2.0 {
		t.Fatalf("history DOTE failed to train: best val MLU %v", best)
	}
	// Inference: the window [high, low] predicts the next (high) interval.
	splits := m.Splits([]*tensor.Dense{high, low})
	mlu := p.MLU(splits, high)
	opt := lp.Solve(p, high).MLU
	if te.NormMLU(mlu, opt) > 1.25 {
		t.Fatalf("history DOTE NormMLU %.3f on anticipated matrix", te.NormMLU(mlu, opt))
	}
}

func TestHistoryModelPanicsOnWrongWindow(t *testing.T) {
	m := NewHistory(DefaultConfig(), 2, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Splits([]*tensor.Dense{tensor.New(2, 1)})
}

func TestHistoryModelShortSeries(t *testing.T) {
	p := twoPathProblem()
	m := NewHistory(DefaultConfig(), p.NumFlows(), p.Tunnels.K, 5)
	if v := m.FitSeries(p, []*tensor.Dense{tensor.New(p.NumFlows(), 1)}, 3, 1e-3, 1); v < 1e299 {
		t.Fatalf("short series should be rejected, got %v", v)
	}
}
