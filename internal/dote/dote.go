// Package dote implements the DOTE baseline (Perry et al., NSDI '23) as
// the paper evaluates it (§4): a plain feed-forward network (MLP) mapping
// the traffic-demand vector directly to per-tunnel split logits, trained to
// minimize MLU. DOTE models neither nodes, edges, capacities, nor
// tunnel-edge associations — its input and output sizes are frozen at
// construction, so it cannot be applied when topology, tunnel sets or even
// matrix dimensions change. Under complete link failures the paper applies
// local rescaling (te.Rescale) to DOTE's output.
package dote

import (
	"fmt"
	"math/rand"

	"harpte/internal/autograd"
	"harpte/internal/nn"
	"harpte/internal/te"
	"harpte/internal/tensor"
)

// Config holds DOTE's hyperparameters. The paper's DOTE searches only
// learning rate and batch size; the architecture is a wide MLP.
type Config struct {
	Hidden   []int   // hidden layer widths
	LossTemp float64 // smooth-max temperature (0 = hard max)
	Seed     int64
}

// DefaultConfig mirrors the reference implementation's shape scaled to CPU.
func DefaultConfig() Config {
	return Config{Hidden: []int{128, 128}, LossTemp: 0.03, Seed: 1}
}

// Model is a DOTE instance bound to a fixed problem shape: F flows × K
// tunnels. It deliberately keeps no reference to the topology.
type Model struct {
	Cfg    Config
	Flows  int
	K      int
	mlp    *nn.MLP
	params []*autograd.Tensor
}

// New builds a DOTE model for a problem with the given flow count and
// tunnels per flow.
func New(cfg Config, flows, k int) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{flows}, cfg.Hidden...)
	dims = append(dims, flows*k)
	m := &Model{Cfg: cfg, Flows: flows, K: k}
	m.mlp = nn.NewMLP(rng, nn.ActReLU, dims...)
	m.params = m.mlp.Params()
	return m
}

// Params returns the trainable parameters.
func (m *Model) Params() []*autograd.Tensor { return m.params }

// NumParams returns the scalar parameter count (≈1M in the paper's AnonNet
// configuration — DOTE's positional design needs a parameter per
// input×output pair).
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.Val.Data)
	}
	return n
}

// normalizeDemand maps the demand vector to an O(1) feature row, the same
// normalization the reference implementation applies.
func (m *Model) normalizeDemand(demand *tensor.Dense) *tensor.Dense {
	mean := 0.0
	for _, v := range demand.Data {
		mean += v
	}
	mean /= float64(len(demand.Data))
	if mean <= 0 {
		mean = 1
	}
	row := tensor.New(1, m.Flows)
	for i, v := range demand.Data {
		row.Data[i] = v / mean
	}
	return row
}

// Forward maps a demand vector (F×1) to the F×K split matrix node.
func (m *Model) Forward(tp *autograd.Tape, demand *tensor.Dense) *autograd.Tensor {
	if demand.Rows != m.Flows {
		panic(fmt.Sprintf("dote: demand has %d flows, model expects %d", demand.Rows, m.Flows))
	}
	in := autograd.NewConst(m.normalizeDemand(demand))
	logits := m.mlp.Forward(tp, in) // 1×(F·K)
	return tp.SoftmaxRows(tp.Reshape(logits, m.Flows, m.K))
}

// Splits runs inference.
func (m *Model) Splits(demand *tensor.Dense) *tensor.Dense {
	tp := autograd.NewTape()
	return m.Forward(tp, demand).Val.Clone()
}

// Sample is one training instance: the problem supplies capacities and
// incidence for the loss; Demand feeds the network; LossDemand (nil =
// Demand) is the matrix the loss is computed against.
type Sample struct {
	Problem    *te.Problem
	Demand     *tensor.Dense
	LossDemand *tensor.Dense
}

func (s Sample) lossDemand() *tensor.Dense {
	if s.LossDemand != nil {
		return s.LossDemand
	}
	return s.Demand
}

// lossMLU builds the (smooth) MLU objective on the tape.
func (m *Model) lossMLU(tp *autograd.Tape, p *te.Problem, splits *autograd.Tensor, demand *tensor.Dense) *autograd.Tensor {
	numTunnels := m.Flows * m.K
	maxCap := p.Graph.MaxCapacity()
	if maxCap <= 0 {
		maxCap = 1
	}
	load := tensor.New(numTunnels, 1)
	invCap := tensor.New(p.Graph.NumEdges(), 1)
	for i, e := range p.Graph.Edges {
		invCap.Data[i] = maxCap / e.Capacity
	}
	for f := 0; f < m.Flows; f++ {
		for j := 0; j < m.K; j++ {
			load.Data[f*m.K+j] = demand.Data[f] / maxCap
		}
	}
	x := tp.Mul(tp.Reshape(splits, numTunnels, 1), autograd.NewConst(load))
	util := tp.Mul(tp.CSRMul(p.Incidence(), x), autograd.NewConst(invCap))
	if m.Cfg.LossTemp > 0 {
		return tp.SmoothMax(util, m.Cfg.LossTemp)
	}
	return tp.Max(util)
}

// TrainStep accumulates gradients over the batch and steps the optimizer.
func (m *Model) TrainStep(opt *autograd.Adam, batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	var total float64
	scale := 1 / float64(len(batch))
	for _, s := range batch {
		tp := autograd.NewTape()
		splits := m.Forward(tp, s.Demand)
		loss := tp.Scale(m.lossMLU(tp, s.Problem, splits, s.lossDemand()), scale)
		tp.Backward(loss)
		total += loss.Val.Data[0]
	}
	opt.Step(m.params)
	return total
}

// Fit trains with validation-best parameter selection (same protocol as
// HARP's Fit, so comparisons are apples to apples).
func (m *Model) Fit(train, val []Sample, epochs int, lr float64, batchSize int, seed int64) float64 {
	if batchSize <= 0 {
		batchSize = 8
	}
	opt := autograd.NewAdam(lr)
	opt.GradClip = 5
	rng := rand.New(rand.NewSource(seed))
	best := 1e300
	var snap [][]float64
	for epoch := 0; epoch < epochs; epoch++ {
		order := rng.Perm(len(train))
		for at := 0; at < len(order); at += batchSize {
			end := at + batchSize
			if end > len(order) {
				end = len(order)
			}
			batch := make([]Sample, 0, end-at)
			for _, i := range order[at:end] {
				batch = append(batch, train[i])
			}
			m.TrainStep(opt, batch)
		}
		v := m.MeanMLU(val)
		if v < best {
			best = v
			snap = m.snapshot()
		}
	}
	if snap != nil {
		m.restore(snap)
	}
	return best
}

// MeanMLU evaluates mean hard MLU over samples (against the loss demand).
func (m *Model) MeanMLU(samples []Sample) float64 {
	if len(samples) == 0 {
		return 1e300
	}
	var total float64
	for _, s := range samples {
		total += s.Problem.MLU(m.Splits(s.Demand), s.lossDemand())
	}
	return total / float64(len(samples))
}

func (m *Model) snapshot() [][]float64 {
	out := make([][]float64, len(m.params))
	for i, p := range m.params {
		out[i] = append([]float64(nil), p.Val.Data...)
	}
	return out
}

func (m *Model) restore(snap [][]float64) {
	for i, p := range m.params {
		copy(p.Val.Data, snap[i])
	}
}

// ---- original DOTE mode: predict routing from a TM history ----
//
// DOTE as published (Perry et al.) is "predictive": it consumes the h most
// recent traffic matrices and outputs the routing for the NEXT (unseen)
// interval, folding prediction and optimization into one network. §4 of the
// HARP paper modifies it to take a single TM; both modes are provided here.

// HistoryModel is the original DOTE: an MLP over the concatenated demand
// vectors of the last Window intervals, trained against the next interval's
// true matrix.
type HistoryModel struct {
	Cfg    Config
	Flows  int
	K      int
	Window int
	mlp    *nn.MLP
	params []*autograd.Tensor
}

// NewHistory builds the history-input DOTE for a fixed problem shape.
func NewHistory(cfg Config, flows, k, window int) *HistoryModel {
	if window < 1 {
		window = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{flows * window}, cfg.Hidden...)
	dims = append(dims, flows*k)
	m := &HistoryModel{Cfg: cfg, Flows: flows, K: k, Window: window}
	m.mlp = nn.NewMLP(rng, nn.ActReLU, dims...)
	m.params = m.mlp.Params()
	return m
}

// Params returns the trainable parameters.
func (m *HistoryModel) Params() []*autograd.Tensor { return m.params }

// Forward maps a demand-vector history (oldest first, exactly Window
// entries of F×1 each) to the F×K split matrix for the next interval.
func (m *HistoryModel) Forward(tp *autograd.Tape, history []*tensor.Dense) *autograd.Tensor {
	if len(history) != m.Window {
		panic(fmt.Sprintf("dote: history length %d, model expects %d", len(history), m.Window))
	}
	in := tensor.New(1, m.Flows*m.Window)
	for w, d := range history {
		if d.Rows != m.Flows {
			panic(fmt.Sprintf("dote: history entry has %d flows, want %d", d.Rows, m.Flows))
		}
		mean := 0.0
		for _, v := range d.Data {
			mean += v
		}
		mean /= float64(m.Flows)
		if mean <= 0 {
			mean = 1
		}
		for i, v := range d.Data {
			in.Data[w*m.Flows+i] = v / mean
		}
	}
	logits := m.mlp.Forward(tp, autograd.NewConst(in))
	return tp.SoftmaxRows(tp.Reshape(logits, m.Flows, m.K))
}

// Splits runs inference on a history window.
func (m *HistoryModel) Splits(history []*tensor.Dense) *tensor.Dense {
	tp := autograd.NewTape()
	return m.Forward(tp, history).Val.Clone()
}

// FitSeries trains on a chronologically ordered demand series: for each t,
// the input is demands[t-Window:t] and the loss is the MLU on demands[t]
// (the future matrix — DOTE's joint prediction+optimization objective).
// The last valFraction of usable steps is the validation set.
func (m *HistoryModel) FitSeries(p *te.Problem, demands []*tensor.Dense, epochs int, lr float64, seed int64) float64 {
	if len(demands) <= m.Window {
		return 1e300
	}
	type step struct {
		history []*tensor.Dense
		next    *tensor.Dense
	}
	var steps []step
	for t := m.Window; t < len(demands); t++ {
		steps = append(steps, step{history: demands[t-m.Window : t], next: demands[t]})
	}
	split := len(steps) * 7 / 8
	if split == len(steps) {
		split = len(steps) - 1
	}
	train, val := steps[:split], steps[split:]

	single := New(m.Cfg, m.Flows, m.K) // reuse its loss builder
	opt := autograd.NewAdam(lr)
	opt.GradClip = 5
	rng := rand.New(rand.NewSource(seed))
	best := 1e300
	var snap [][]float64
	for epoch := 0; epoch < epochs; epoch++ {
		for _, i := range rng.Perm(len(train)) {
			s := train[i]
			tp := autograd.NewTape()
			splits := m.Forward(tp, s.history)
			loss := single.lossMLU(tp, p, splits, s.next)
			tp.Backward(loss)
			opt.Step(m.params)
		}
		var v float64
		for _, s := range val {
			v += p.MLU(m.Splits(s.history), s.next)
		}
		v /= float64(len(val))
		if v < best {
			best = v
			snap = make([][]float64, len(m.params))
			for i, pr := range m.params {
				snap[i] = append([]float64(nil), pr.Val.Data...)
			}
		}
	}
	if snap != nil {
		for i, pr := range m.params {
			copy(pr.Val.Data, snap[i])
		}
	}
	return best
}
