// Package replica injects replica-level faults for the fleet torture
// tests: the failure modes a replicated serving fleet must survive —
// replicas that crash and stay down, hang mid-request, answer with a
// latency spike, or turn byzantine and return well-formed garbage (NaN
// or wrong-shape splits). Like the parent chaos package's CrashFS, every
// injector is deterministic: a Plan's seed fully determines the fault
// drawn at each serve call, so any torture failure replays from its seed
// alone (TestFaultDeterministic).
//
// This lives in its own package (not chaos proper) because it speaks the
// serving types (resilience.Decision), and resilience imports core whose
// white-box tests import chaos — a cycle the subpackage sidesteps.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/tensor"
)

// ErrDown tags every failure injected by a crashed (or released hung)
// replica.
var ErrDown = errors.New("chaos/replica: replica down")

// Kind is one fault decision drawn from the plan's stream.
type Kind int

const (
	// KindOK passes the call through to the wrapped backend.
	KindOK Kind = iota
	// KindCrash fails the call fast; once drawn, every later call is
	// also crashed (the process is gone).
	KindCrash
	// KindHang blocks the call until Release is called, then fails it —
	// a wedged process or network black hole.
	KindHang
	// KindSlow sleeps Plan.SlowDelay, then passes through — a latency
	// spike (GC pause, noisy neighbor).
	KindSlow
	// KindNaN answers with a correctly shaped split matrix full of NaN —
	// byzantine output that only output vetting can catch.
	KindNaN
	// KindShape answers with a wrong-shape split matrix — byzantine
	// output violating the response schema.
	KindShape
)

// String returns the schedule-log label.
func (k Kind) String() string {
	switch k {
	case KindOK:
		return "ok"
	case KindCrash:
		return "crash"
	case KindHang:
		return "hang"
	case KindSlow:
		return "slow"
	case KindNaN:
		return "nan"
	case KindShape:
		return "shape"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Plan configures one replica's deterministic fault schedule. The
// per-call fault probabilities (PHang + PSlow + PNaN + PShape ≤ 1) are
// resolved by a single uniform draw per serve call from the seeded
// stream, so the k-th call always draws the same fault for a given seed.
type Plan struct {
	Seed int64
	// CrashAfter is the number of serve calls before the replica dies
	// permanently (0 = dead on arrival); negative means it never
	// crashes.
	CrashAfter int
	// Per-call fault probabilities.
	PHang  float64
	PSlow  float64
	PNaN   float64
	PShape float64
	// SlowDelay is the injected latency for KindSlow draws.
	SlowDelay time.Duration
}

// decide resolves the fault for one serve call. It always consumes
// exactly one draw from rng, even for crashed calls, so the decision
// stream stays aligned with Schedule no matter where the crash lands.
func (p Plan) decide(rng *rand.Rand, call int) Kind {
	u := rng.Float64()
	if p.CrashAfter >= 0 && call >= p.CrashAfter {
		return KindCrash
	}
	switch {
	case u < p.PHang:
		return KindHang
	case u < p.PHang+p.PSlow:
		return KindSlow
	case u < p.PHang+p.PSlow+p.PNaN:
		return KindNaN
	case u < p.PHang+p.PSlow+p.PNaN+p.PShape:
		return KindShape
	}
	return KindOK
}

// Schedule returns the fault decisions the plan makes for its first n
// serve calls — the reference schedule the determinism test pins a live
// Fault against.
func Schedule(plan Plan, n int) []Kind {
	rng := rand.New(rand.NewSource(plan.Seed))
	out := make([]Kind, n)
	for i := range out {
		out[i] = plan.decide(rng, i)
	}
	return out
}

// Backend is the serving surface Fault wraps — satisfied by fleet.Local
// (and by Fault itself, so injectors stack).
type Backend interface {
	Serve(p *te.Problem, demand *tensor.Dense) (resilience.Decision, error)
	Reload(path string) error
	Drain(ctx context.Context) error
}

// Fault wraps a replica backend and injects the plan's fault schedule
// into its Serve path. Safe for concurrent use; decisions are drawn
// sequentially under a lock, so the schedule (the i-th decision) is
// seed-deterministic even when request arrival order is not.
type Fault struct {
	inner Backend
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	calls int
	down  bool
	log   []string

	releaseOnce sync.Once
	releaseCh   chan struct{} // closed by Release; unblocks hung calls
}

// New wraps inner with the plan's fault schedule.
func New(inner Backend, plan Plan) *Fault {
	return &Fault{
		inner:     inner,
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		releaseCh: make(chan struct{}),
	}
}

// next draws the fault for this call and logs it.
func (r *Fault) next() Kind {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.plan.decide(r.rng, r.calls)
	r.log = append(r.log, fmt.Sprintf("serve %d: %s", r.calls, k))
	r.calls++
	if k == KindCrash {
		r.down = true
	}
	return k
}

// Serve injects the next scheduled fault, passing healthy (and slow)
// calls through to the wrapped backend.
func (r *Fault) Serve(p *te.Problem, demand *tensor.Dense) (resilience.Decision, error) {
	switch r.next() {
	case KindCrash:
		return resilience.Decision{}, fmt.Errorf("%w: crashed", ErrDown)
	case KindHang:
		<-r.releaseCh
		return resilience.Decision{}, fmt.Errorf("%w: hung call released", ErrDown)
	case KindSlow:
		time.Sleep(r.plan.SlowDelay)
		return r.inner.Serve(p, demand)
	case KindNaN:
		s := tensor.New(p.NumFlows(), p.Tunnels.K)
		for i := range s.Data {
			s.Data[i] = math.NaN()
		}
		return resilience.Decision{Splits: s, Tier: resilience.TierFull}, nil
	case KindShape:
		return resilience.Decision{Splits: tensor.New(1, 1), Tier: resilience.TierFull}, nil
	}
	return r.inner.Serve(p, demand)
}

// Reload passes through unless the replica has crashed.
func (r *Fault) Reload(path string) error {
	if r.Down() {
		return fmt.Errorf("%w: reload refused", ErrDown)
	}
	return r.inner.Reload(path)
}

// Drain passes through unless the replica has crashed.
func (r *Fault) Drain(ctx context.Context) error {
	if r.Down() {
		return fmt.Errorf("%w: drain refused", ErrDown)
	}
	return r.inner.Drain(ctx)
}

// Release unblocks every hung call (they fail with ErrDown) so torture
// tests can join their goroutines. Idempotent.
func (r *Fault) Release() {
	r.releaseOnce.Do(func() { close(r.releaseCh) })
}

// Down reports whether the crash point has been reached.
func (r *Fault) Down() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down
}

// Calls returns how many serve calls have drawn a fault decision.
func (r *Fault) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Log returns the fault schedule as drawn so far, one entry per serve
// call — the replay artifact compared by the determinism suite.
func (r *Fault) Log() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.log...)
}
