package replica_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"harpte/internal/chaos/replica"
	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/tunnels"
)

// twoPathProblem: 0→1 via a 10G direct link or a 5G two-hop detour.
func twoPathProblem() *te.Problem {
	g := topology.New("twopath", 3)
	g.AddBidirectional(0, 1, 10)
	g.AddBidirectional(0, 2, 5)
	g.AddBidirectional(2, 1, 5)
	g.EdgeNodes = []int{0, 1}
	return te.NewProblem(g, tunnels.Compute(g, 2))
}

// ecmpBackend answers every request with valid ECMP splits.
type ecmpBackend struct{ serves, reloads, drains int }

func (b *ecmpBackend) Serve(p *te.Problem, d *tensor.Dense) (resilience.Decision, error) {
	b.serves++
	return resilience.Decision{
		Splits: te.NormalizeRows(te.Rescale(p, p.UniformSplits())),
		Tier:   resilience.TierECMP,
	}, nil
}

func (b *ecmpBackend) Reload(path string) error { b.reloads++; return nil }

func (b *ecmpBackend) Drain(ctx context.Context) error { b.drains++; return nil }

// TestFaultDeterministic pins the chaos discipline: the same seed and
// plan yield the identical fault schedule — both across two live Fault
// instances and against the Schedule reference — so any torture failure
// replays from its seed alone.
func TestFaultDeterministic(t *testing.T) {
	p := twoPathProblem()
	plan := replica.Plan{
		Seed:       42,
		CrashAfter: 40,
		PSlow:      0.2,
		PNaN:       0.3,
		PShape:     0.2,
	}
	const n = 50
	want := replica.Schedule(plan, n)

	a := replica.New(&ecmpBackend{}, plan)
	b := replica.New(&ecmpBackend{}, plan)
	for i := 0; i < n; i++ {
		decA, errA := a.Serve(p, nil)
		b.Serve(p, nil)
		// Behavior must match the scheduled kind, call by call.
		switch want[i] {
		case replica.KindCrash:
			if !errors.Is(errA, replica.ErrDown) {
				t.Fatalf("call %d scheduled %v, got err %v", i, want[i], errA)
			}
		case replica.KindNaN:
			if errA != nil || decA.Splits.Rows != p.NumFlows() || decA.Splits.Cols != p.Tunnels.K {
				t.Fatalf("call %d scheduled nan: err=%v splits=%v", i, errA, decA.Splits)
			}
			if !math.IsNaN(decA.Splits.Data[0]) {
				t.Fatalf("call %d scheduled nan, got finite splits", i)
			}
		case replica.KindShape:
			if errA != nil || decA.Splits.Rows != 1 || decA.Splits.Cols != 1 {
				t.Fatalf("call %d scheduled shape fault: err=%v", i, errA)
			}
		case replica.KindOK, replica.KindSlow:
			if errA != nil || decA.Splits == nil {
				t.Fatalf("call %d scheduled %v: err=%v", i, want[i], errA)
			}
		}
	}

	logA, logB := a.Log(), b.Log()
	if len(logA) != n || len(logB) != n {
		t.Fatalf("log lengths %d/%d, want %d", len(logA), len(logB), n)
	}
	for i := range logA {
		if logA[i] != logB[i] {
			t.Fatalf("same seed diverged at call %d: %q vs %q", i, logA[i], logB[i])
		}
	}
	if !a.Down() || a.Calls() != n {
		t.Fatalf("after %d calls past CrashAfter=%d: down=%v calls=%d",
			n, plan.CrashAfter, a.Down(), a.Calls())
	}

	// A different seed must produce a different schedule (else the seed
	// is not actually driving the stream).
	other := replica.Schedule(replica.Plan{Seed: 43, CrashAfter: 40, PSlow: 0.2, PNaN: 0.3, PShape: 0.2}, n)
	same := true
	for i := range want {
		if want[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestFaultCrashRefusesControlPlane: a crashed replica refuses Reload and
// Drain too, tagged ErrDown.
func TestFaultCrashRefusesControlPlane(t *testing.T) {
	p := twoPathProblem()
	inner := &ecmpBackend{}
	f := replica.New(inner, replica.Plan{Seed: 1, CrashAfter: 0})
	if _, err := f.Serve(p, nil); !errors.Is(err, replica.ErrDown) {
		t.Fatalf("serve after crash: %v", err)
	}
	if err := f.Reload("x"); !errors.Is(err, replica.ErrDown) {
		t.Fatalf("reload after crash: %v", err)
	}
	if err := f.Drain(context.Background()); !errors.Is(err, replica.ErrDown) {
		t.Fatalf("drain after crash: %v", err)
	}
	if inner.serves+inner.reloads+inner.drains != 0 {
		t.Fatal("crashed fault leaked calls to the backend")
	}
}

// TestFaultHangBlocksUntilRelease: a hung call parks until Release, then
// fails with ErrDown — the shape torture tests rely on to join workers.
func TestFaultHangBlocksUntilRelease(t *testing.T) {
	p := twoPathProblem()
	f := replica.New(&ecmpBackend{}, replica.Plan{Seed: 1, CrashAfter: -1, PHang: 1})
	done := make(chan error, 1)
	go func() {
		_, err := f.Serve(p, nil)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hung call returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	f.Release()
	f.Release() // idempotent
	select {
	case err := <-done:
		if !errors.Is(err, replica.ErrDown) {
			t.Fatalf("released hung call: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung call never released")
	}
}
