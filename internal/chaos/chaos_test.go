package chaos

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestTruncatingWriterDropsTail(t *testing.T) {
	var out bytes.Buffer
	w := &TruncatingWriter{W: &out, Limit: 5}
	n, err := w.Write([]byte("hello world"))
	if err != nil || n != 11 {
		t.Fatalf("torn write reported (%d, %v), want silent success", n, err)
	}
	if out.String() != "hello" {
		t.Fatalf("wrote %q, want prefix %q", out.String(), "hello")
	}
	// Later writes vanish entirely.
	if n, err := w.Write([]byte("more")); err != nil || n != 4 {
		t.Fatalf("post-limit write (%d, %v)", n, err)
	}
	if out.Len() != 5 {
		t.Fatalf("buffer grew past the limit: %d bytes", out.Len())
	}
}

func TestTruncatingWriterErrMode(t *testing.T) {
	boom := errors.New("disk full")
	var out bytes.Buffer
	w := &TruncatingWriter{W: &out, Limit: 3, Err: boom}
	if _, err := w.Write([]byte("abcdef")); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, boom) {
		t.Fatalf("want injected error on later writes, got %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	buf := []byte{0b0000_0000}
	FlipBit(buf, 0, 3)
	if buf[0] != 0b0000_1000 {
		t.Fatalf("got %08b", buf[0])
	}
	FlipBit(buf, 0, 3)
	if buf[0] != 0 {
		t.Fatalf("double flip not identity: %08b", buf[0])
	}
}

func TestCorruptAndTruncateFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("abcdefgh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CorruptFile(path, -1, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if data[7] != 'h'^1 {
		t.Fatalf("last byte %q", data[7])
	}
	if err := TruncateFile(path, -3); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) != 5 {
		t.Fatalf("len %d after truncation, want 5", len(data))
	}
	if err := CorruptFile(path, 99, 0); err == nil {
		t.Fatal("out-of-range corruption must error")
	}
}

func TestNaNHooks(t *testing.T) {
	h := NaNAfter(2)
	if v := h(1.5); v != 1.5 {
		t.Fatalf("call 1 poisoned: %v", v)
	}
	if v := h(2.5); v != 2.5 {
		t.Fatalf("call 2 poisoned: %v", v)
	}
	if v := h(3.5); !math.IsNaN(v) {
		t.Fatalf("call 3 not poisoned: %v", v)
	}

	e := NaNEvery(2)
	if v := e(1); v != 1 {
		t.Fatalf("call 1 poisoned: %v", v)
	}
	if v := e(2); !math.IsNaN(v) {
		t.Fatalf("call 2 not poisoned: %v", v)
	}
	if v := e(3); v != 3 {
		t.Fatalf("call 3 poisoned: %v", v)
	}
}
