package chaos

// Crash-consistency torture: thread CrashFS under core.SaveCheckpoint and
// prove that for a kill at EVERY progress point of the write protocol —
// every byte offset of the header and payload, and every metadata op
// (create, sync, close, rename, dir-sync) — the checkpoint at the target
// path afterwards is either the previous good checkpoint, the complete new
// one, or a cleanly detected error. Never silently corrupt state.
//
// This test lives in chaos (not core) because core's in-package tests
// already import chaos; the dependency must stay one-directional.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"harpte/internal/core"
)

// tortureCheckpoint builds a checkpoint whose payload is large enough that
// the protocol spans well over 1000 progress points, with values derived
// from epoch so the two generations are distinguishable byte-for-byte.
func tortureCheckpoint(epoch int) *core.Checkpoint {
	row := make([]float64, 220)
	for i := range row {
		row[i] = float64(epoch*100000 + i)
	}
	return &core.Checkpoint{
		Epoch:      epoch,
		Seed:       42,
		NumTrain:   10,
		BestValMLU: float64(epoch),
		Params:     [][]float64{row},
		TrainLoss:  []float64{float64(epoch), float64(epoch) / 2},
	}
}

// matchesCheckpoint reports whether got is exactly ck (the fields the
// torture generations differ in).
func matchesCheckpoint(got, ck *core.Checkpoint) bool {
	if got.Epoch != ck.Epoch || got.BestValMLU != ck.BestValMLU {
		return false
	}
	if len(got.Params) != len(ck.Params) {
		return false
	}
	for i := range ck.Params {
		if len(got.Params[i]) != len(ck.Params[i]) {
			return false
		}
		for j := range ck.Params[i] {
			if got.Params[i][j] != ck.Params[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCheckpointCrashTortureEveryWritePoint(t *testing.T) {
	ck1, ck2 := tortureCheckpoint(1), tortureCheckpoint(2)

	// Measure the protocol's total progress with a kill that never fires.
	probe := t.TempDir()
	probePath := filepath.Join(probe, "ck.harp")
	if err := core.SaveCheckpoint(probePath, ck1); err != nil {
		t.Fatal(err)
	}
	meter := NewCrashFS(CrashPlan{Seed: 1, KillAtProgress: -1})
	if err := core.SaveCheckpointFS(meter, probePath, ck2); err != nil {
		t.Fatalf("fault-free CrashFS save failed: %v", err)
	}
	if got, err := core.LoadCheckpoint(probePath); err != nil || !matchesCheckpoint(got, ck2) {
		t.Fatalf("fault-free CrashFS save did not install the new checkpoint (err=%v)", err)
	}
	total := meter.Progress()
	if total < 1000 {
		t.Fatalf("protocol spans only %d progress points; torture needs >= 1000 (grow the payload)", total)
	}
	t.Logf("torturing %d crash points (+1 fault-free)", total)

	base := t.TempDir()
	for kill := int64(0); kill <= total; kill++ {
		dir := filepath.Join(base, fmt.Sprintf("k%d", kill))
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "ck.harp")
		if err := core.SaveCheckpoint(path, ck1); err != nil {
			t.Fatal(err)
		}
		// Every third schedule also drops fsyncs, so the kill can tear
		// data the writer believed durable.
		plan := CrashPlan{Seed: kill*7 + 13, KillAtProgress: kill, DropSyncs: kill%3 == 0}
		cfs := NewCrashFS(plan)
		saveErr := core.SaveCheckpointFS(cfs, path, ck2)

		got, loadErr := core.LoadCheckpoint(path)
		switch {
		case saveErr == nil:
			// The save claims success, so the new checkpoint must be the
			// one a reader sees (with honest fsyncs it is also durable).
			if loadErr != nil || !matchesCheckpoint(got, ck2) {
				t.Fatalf("kill@%d plan %+v: save succeeded but load got err=%v\nlog:\n%v",
					kill, plan, loadErr, cfs.Log())
			}
		case loadErr == nil:
			if !matchesCheckpoint(got, ck1) && !matchesCheckpoint(got, ck2) {
				t.Fatalf("kill@%d plan %+v: loaded checkpoint matches neither generation (epoch %d)\nlog:\n%v",
					kill, plan, got.Epoch, cfs.Log())
			}
		default:
			// A load failure must be a cleanly detected condition — never
			// a decode of garbage, never a panic.
			if !errors.Is(loadErr, core.ErrCorruptCheckpoint) && !errors.Is(loadErr, fs.ErrNotExist) {
				t.Fatalf("kill@%d plan %+v: unclean load error %v\nlog:\n%v", kill, plan, loadErr, cfs.Log())
			}
			// With honest fsyncs the protocol is strictly stronger: the
			// previous good checkpoint can never be lost, so a load error
			// is itself a bug.
			if !plan.DropSyncs {
				t.Fatalf("kill@%d plan %+v: previous-good checkpoint lost without dropped fsyncs: %v\nlog:\n%v",
					kill, plan, loadErr, cfs.Log())
			}
		}
	}
}

// TestCheckpointTortureRetryAfterCrashDebris: a crash leaves temp-file
// debris behind; the next (healthy) SaveCheckpoint over the same path must
// succeed and install the new checkpoint regardless.
func TestCheckpointTortureRetryAfterCrashDebris(t *testing.T) {
	ck1, ck2 := tortureCheckpoint(1), tortureCheckpoint(2)
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.harp")
	if err := core.SaveCheckpoint(path, ck1); err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(CrashPlan{Seed: 9, KillAtProgress: 400})
	if err := core.SaveCheckpointFS(cfs, path, ck2); err == nil {
		t.Fatal("kill@400 save unexpectedly succeeded")
	}
	if err := core.SaveCheckpoint(path, ck2); err != nil {
		t.Fatalf("post-crash save over debris: %v", err)
	}
	got, err := core.LoadCheckpoint(path)
	if err != nil || !matchesCheckpoint(got, ck2) {
		t.Fatalf("post-crash save did not install new checkpoint (err=%v)", err)
	}
}
