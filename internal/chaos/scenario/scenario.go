// Package scenario scripts correlated disasters over time: the
// seed-replayable event timelines of ROADMAP item 5. A Scenario is a
// declarative JSON-serializable script — fiber cuts failing whole
// shared-risk link groups at once, maintenance waves quarantining
// replicas, regional flash crowds, sustained demand-regime shifts, and
// adversarial traffic-matrix windows — and a Player deterministically
// expands it into per-step (topology, demand) instances plus fleet
// actions. The same scenario and seed always replay the same disaster,
// so any torture failure reproduces from the script alone, the same
// contract as the parent chaos package's injectors.
//
// Like every chaos package, this is test/tooling infrastructure:
// production serving code never imports it. The package sits above
// topology/traffic/te but below core — adversarial windows take a
// caller-supplied hook rather than calling the model, mirroring
// verify.SplitsFunc.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"harpte/internal/topology"
)

// Kind names one correlated-event type.
type Kind string

const (
	// KindFiberCut fails every link of an SRLG for the event window — a
	// backhoe cutting a conduit that carries N parallel links.
	KindFiberCut Kind = "fiber-cut"
	// KindMaintenance quarantines the listed fleet replicas for the
	// window — a maintenance wave rolling through a site.
	KindMaintenance Kind = "maintenance"
	// KindFlashCrowd multiplies all demand into Dst by Scale for the
	// window — a regional 10–100x single-destination spike.
	KindFlashCrowd Kind = "flash-crowd"
	// KindSustainedShift blends the traffic toward a re-drawn gravity
	// regime (blend factor Alpha) from At onward — a structural traffic
	// migration, not noise.
	KindSustainedShift Kind = "sustained-shift"
	// KindAdversarial replaces the demand with an adversarially chosen
	// TM for the window (via the Player's Adversary hook; without a
	// hook the window only marks steps Hostile).
	KindAdversarial Kind = "adversarial"
)

// Event is one scripted correlated event. Its window is [At, Until);
// Until <= 0 means "until the end of the scenario". Maintenance events
// emit Quarantine actions at At and Release actions at Until.
type Event struct {
	Kind  Kind `json:"kind"`
	At    int  `json:"at"`
	Until int  `json:"until,omitempty"`

	// SRLG is the risk group a fiber-cut fails.
	SRLG topology.SRLG `json:"srlg,omitempty"`
	// Dst and Scale parameterize a flash crowd.
	Dst   int     `json:"dst,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// Alpha is the sustained-shift blend factor in (0, 1].
	Alpha float64 `json:"alpha,omitempty"`
	// Replicas are the fleet replica indices a maintenance wave takes
	// down.
	Replicas []int `json:"replicas,omitempty"`
}

// active reports whether the event covers step t in a scenario of n steps.
func (e Event) active(t, n int) bool {
	until := e.Until
	if until <= 0 {
		until = n
	}
	return t >= e.At && t < until
}

// Scenario is a complete disaster script. Steps is the timeline length;
// Seed drives every random draw (base traffic, shift regimes), so a
// scenario replays bit-identically.
type Scenario struct {
	Name  string `json:"name"`
	Seed  int64  `json:"seed"`
	Steps int    `json:"steps"`
	// Total is the mean aggregate traffic volume per step; 0 lets the
	// player's config decide.
	Total  float64 `json:"total,omitempty"`
	Events []Event `json:"events"`
}

// Parse reads a JSON scenario and validates its internal consistency
// (topology-dependent checks happen in Validate, which needs the graph).
func Parse(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parse: %w", err)
	}
	if sc.Steps <= 0 {
		return Scenario{}, fmt.Errorf("scenario %q: steps must be positive, got %d", sc.Name, sc.Steps)
	}
	for i, e := range sc.Events {
		if err := checkEvent(e, sc.Steps); err != nil {
			return Scenario{}, fmt.Errorf("scenario %q event %d: %w", sc.Name, i, err)
		}
	}
	return sc, nil
}

// ParseFile is Parse on a file path.
func ParseFile(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Parse(f)
}

// Write serializes the scenario as indented JSON.
func (sc Scenario) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

func checkEvent(e Event, steps int) error {
	if e.At < 0 || e.At >= steps {
		return fmt.Errorf("at=%d outside [0,%d)", e.At, steps)
	}
	if e.Until > 0 && e.Until <= e.At {
		return fmt.Errorf("until=%d not after at=%d", e.Until, e.At)
	}
	switch e.Kind {
	case KindFiberCut:
		if len(e.SRLG.Links) == 0 {
			return fmt.Errorf("fiber-cut with empty SRLG")
		}
	case KindMaintenance:
		if len(e.Replicas) == 0 {
			return fmt.Errorf("maintenance with no replicas")
		}
	case KindFlashCrowd:
		if e.Scale <= 0 {
			return fmt.Errorf("flash-crowd scale %v must be positive", e.Scale)
		}
	case KindSustainedShift:
		if e.Alpha <= 0 || e.Alpha > 1 {
			return fmt.Errorf("sustained-shift alpha %v outside (0,1]", e.Alpha)
		}
	case KindAdversarial:
		// no parameters beyond the window
	default:
		return fmt.Errorf("unknown event kind %q", e.Kind)
	}
	return nil
}

// Validate checks the scenario's topology-dependent references against g:
// every fiber-cut link must exist and every flash-crowd destination must
// be a valid node. Replica indices are checked by the caller, which knows
// the fleet size.
func Validate(sc Scenario, g *topology.Graph) error {
	for i, e := range sc.Events {
		switch e.Kind {
		case KindFiberCut:
			for _, l := range e.SRLG.Links {
				if _, ok := g.EdgeID(l[0], l[1]); !ok {
					if _, ok := g.EdgeID(l[1], l[0]); !ok {
						return fmt.Errorf("scenario %q event %d: no link between %d and %d in %s",
							sc.Name, i, l[0], l[1], g.Name)
					}
				}
			}
		case KindFlashCrowd:
			if e.Dst < 0 || e.Dst >= g.NumNodes {
				return fmt.Errorf("scenario %q event %d: flash-crowd dst %d outside [0,%d)",
					sc.Name, i, e.Dst, g.NumNodes)
			}
		}
	}
	return nil
}
