package scenario

import (
	"bytes"
	"strings"
	"testing"

	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func baseProblem() *te.Problem {
	g := topology.New("scenario-base", 6)
	g.AddBidirectional(0, 1, 100)
	g.AddBidirectional(1, 2, 100)
	g.AddBidirectional(2, 3, 100)
	g.AddBidirectional(3, 4, 100)
	g.AddBidirectional(4, 5, 100)
	g.AddBidirectional(5, 0, 100)
	g.AddBidirectional(0, 3, 60)
	g.AddBidirectional(1, 4, 60)
	return te.NewProblem(g, tunnels.Compute(g, 2))
}

func testScenario() Scenario {
	return Scenario{
		Name:  "drill",
		Seed:  42,
		Steps: 12,
		Events: []Event{
			{Kind: KindFiberCut, At: 4, Until: 8, SRLG: topology.SRLG{Name: "conduit", Links: [][2]int{{0, 1}, {0, 3}}}},
			{Kind: KindFlashCrowd, At: 2, Until: 10, Dst: 2, Scale: 40},
			{Kind: KindSustainedShift, At: 6, Alpha: 0.5},
			{Kind: KindAdversarial, At: 8},
			{Kind: KindMaintenance, At: 4, Until: 8, Replicas: []int{0, 1}},
		},
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := testScenario()
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Name != sc.Name || got.Seed != sc.Seed || got.Steps != sc.Steps || len(got.Events) != len(sc.Events) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, sc)
	}
	if got.Events[0].SRLG.Links[1] != [2]int{0, 3} {
		t.Fatalf("SRLG links lost in round trip: %+v", got.Events[0].SRLG)
	}
}

func TestParseRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"zero steps", `{"name":"x","steps":0,"events":[]}`, "steps must be positive"},
		{"unknown kind", `{"steps":5,"events":[{"kind":"asteroid","at":1}]}`, "unknown event kind"},
		{"at out of range", `{"steps":5,"events":[{"kind":"adversarial","at":9}]}`, "outside"},
		{"until before at", `{"steps":5,"events":[{"kind":"adversarial","at":3,"until":2}]}`, "not after"},
		{"empty srlg", `{"steps":5,"events":[{"kind":"fiber-cut","at":1}]}`, "empty SRLG"},
		{"bad flash scale", `{"steps":5,"events":[{"kind":"flash-crowd","at":1}]}`, "must be positive"},
		{"bad alpha", `{"steps":5,"events":[{"kind":"sustained-shift","at":1,"alpha":2}]}`, "outside (0,1]"},
		{"no replicas", `{"steps":5,"events":[{"kind":"maintenance","at":1}]}`, "no replicas"},
		{"unknown field", `{"steps":5,"blast_radius":3,"events":[]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestValidateAgainstTopology(t *testing.T) {
	p := baseProblem()
	sc := testScenario()
	if err := Validate(sc, p.Graph); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := testScenario()
	bad.Events[0].SRLG.Links = [][2]int{{0, 2}}
	if err := Validate(bad, p.Graph); err == nil || !strings.Contains(err.Error(), "no link") {
		t.Fatalf("want missing-link error, got %v", err)
	}
	badDst := testScenario()
	badDst.Events[1].Dst = 99
	if err := Validate(badDst, p.Graph); err == nil || !strings.Contains(err.Error(), "dst") {
		t.Fatalf("want bad-dst error, got %v", err)
	}
}

func TestPlayerDeterministicReplay(t *testing.T) {
	p := baseProblem()
	mk := func() *Player {
		pl, err := NewPlayer(testScenario(), Config{Problem: p, Traffic: traffic.DefaultSeriesConfig(200)})
		if err != nil {
			t.Fatalf("NewPlayer: %v", err)
		}
		return pl
	}
	a, b := mk(), mk()
	for t0 := 0; t0 < a.Steps(); t0++ {
		sa, err := a.Step(t0)
		if err != nil {
			t.Fatalf("step %d: %v", t0, err)
		}
		sb, _ := b.Step(t0)
		if sa.Problem.Fingerprint() != sb.Problem.Fingerprint() {
			t.Fatalf("step %d: fingerprints differ", t0)
		}
		for i := range sa.Demand.Data {
			if sa.Demand.Data[i] != sb.Demand.Data[i] {
				t.Fatalf("step %d: demands differ at %d", t0, i)
			}
		}
	}
}

func TestPlayerTimelineSemantics(t *testing.T) {
	p := baseProblem()
	pl, err := NewPlayer(testScenario(), Config{Problem: p, Traffic: traffic.DefaultSeriesConfig(200)})
	if err != nil {
		t.Fatalf("NewPlayer: %v", err)
	}
	base := p.Fingerprint()

	s0, _ := pl.Step(0)
	if s0.Problem.Fingerprint() != base || len(s0.Labels) != 0 || s0.Hostile {
		t.Fatalf("step 0 must be undamaged and quiet: %+v", s0)
	}

	// Fiber cut active on [4,8): fingerprint changes, capacities failed.
	s5, _ := pl.Step(5)
	if s5.Problem.Fingerprint() == base {
		t.Fatalf("step 5: cut did not change fingerprint")
	}
	id, _ := s5.Problem.Graph.EdgeID(0, 1)
	if s5.Problem.Graph.Edges[id].Capacity != topology.FailedCapacity {
		t.Fatalf("step 5: link 0-1 not failed")
	}
	// Same damage state reuses the same problem (stable fingerprint for
	// the serving cache and sharding).
	s6, _ := pl.Step(6)
	if s5.Problem != s6.Problem {
		t.Fatalf("steps 5 and 6 share a damage state but not a problem")
	}
	// Cut heals at 8.
	s8, _ := pl.Step(8)
	if s8.Problem.Fingerprint() != base {
		t.Fatalf("step 8: cut did not heal")
	}

	// Flash crowd on [2,10): demand into dst 2 scaled 40x vs base series.
	quiet, _ := NewPlayer(Scenario{Name: "quiet", Seed: 42, Steps: 12}, Config{Problem: p, Traffic: traffic.DefaultSeriesConfig(200)})
	q3, _ := quiet.Step(3)
	s3, _ := pl.Step(3)
	var flows = p.Tunnels.Flows
	for i, f := range flows {
		want := q3.Demand.Data[i]
		if f.Dst == 2 && f.Src != 2 {
			want *= 40
		}
		diff := s3.Demand.Data[i] - want
		if diff > 1e-9*want || diff < -1e-9*want {
			t.Fatalf("flow %d (%d->%d): demand %v, want %v", i, f.Src, f.Dst, s3.Demand.Data[i], want)
		}
	}

	// Adversarial window from 8 marks hostile and routes through the hook.
	called := false
	withAdv, _ := NewPlayer(testScenario(), Config{
		Problem: p, Traffic: traffic.DefaultSeriesConfig(200),
		Adversary: func(ap *te.Problem, benign *tensor.Dense) (*tensor.Dense, error) {
			called = true
			return benign, nil
		},
	})
	s9, _ := withAdv.Step(9)
	if !s9.Hostile || !called {
		t.Fatalf("step 9 must be hostile via the adversary hook (hostile=%v called=%v)", s9.Hostile, called)
	}

	// Maintenance wave: quarantine exactly at 4, release exactly at 8.
	s4, _ := pl.Step(4)
	if len(s4.Quarantine) != 2 || s4.Quarantine[0] != 0 || s4.Quarantine[1] != 1 {
		t.Fatalf("step 4 quarantine = %v, want [0 1]", s4.Quarantine)
	}
	if len(s5.Quarantine) != 0 {
		t.Fatalf("step 5 must not re-quarantine: %v", s5.Quarantine)
	}
	s8b, _ := pl.Step(8)
	if len(s8b.Release) != 2 {
		t.Fatalf("step 8 release = %v, want [0 1]", s8b.Release)
	}
}

func TestPlayerPartitionedCut(t *testing.T) {
	// A spur node: cutting its only link partitions the topology. The
	// player must proceed on the damaged graph and label the steps.
	g := topology.New("spur", 4)
	g.AddBidirectional(0, 1, 100)
	g.AddBidirectional(1, 2, 100)
	g.AddBidirectional(0, 2, 100)
	g.AddBidirectional(0, 3, 100)
	p := te.NewProblem(g, tunnels.Compute(g, 2))
	sc := Scenario{
		Name: "partition", Seed: 1, Steps: 4,
		Events: []Event{{Kind: KindFiberCut, At: 1, Until: 3, SRLG: topology.SRLG{Name: "spur", Links: [][2]int{{0, 3}}}}},
	}
	pl, err := NewPlayer(sc, Config{Problem: p, Traffic: traffic.DefaultSeriesConfig(50)})
	if err != nil {
		t.Fatalf("NewPlayer: %v", err)
	}
	s1, err := pl.Step(1)
	if err != nil {
		t.Fatalf("partitioned step must not error: %v", err)
	}
	if !s1.Partitioned {
		t.Fatalf("step 1 must be marked partitioned: %+v", s1)
	}
	s0, _ := pl.Step(0)
	if s0.Partitioned {
		t.Fatalf("step 0 must not be partitioned")
	}
}

func TestAutoScenarioIsValidAndReplayable(t *testing.T) {
	p := baseProblem()
	sc := Auto(p, 4, 30, 7)
	if err := Validate(sc, p.Graph); err != nil {
		t.Fatalf("Auto produced invalid scenario: %v", err)
	}
	sc2 := Auto(p, 4, 30, 7)
	if len(sc.Events) != len(sc2.Events) {
		t.Fatalf("Auto not deterministic")
	}
	pl, err := NewPlayer(sc, Config{Problem: p, Traffic: traffic.DefaultSeriesConfig(200)})
	if err != nil {
		t.Fatalf("NewPlayer: %v", err)
	}
	sawCut, sawHostile := false, false
	for t0 := 0; t0 < pl.Steps(); t0++ {
		s, err := pl.Step(t0)
		if err != nil {
			t.Fatalf("step %d: %v", t0, err)
		}
		if s.Problem.Fingerprint() != p.Fingerprint() {
			sawCut = true
		}
		if s.Hostile {
			sawHostile = true
		}
	}
	if !sawCut || !sawHostile {
		t.Fatalf("Auto scenario must include a cut and an adversarial window (cut=%v hostile=%v)", sawCut, sawHostile)
	}
}
