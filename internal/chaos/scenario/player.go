package scenario

import (
	"errors"
	"fmt"
	"math/rand"

	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/traffic"
)

// Adversary transforms a benign per-flow demand (F×1) into an
// adversarially chosen one for the same problem. Callers typically wire
// verify.AdversarialTM with the model under test; the hook keeps this
// package below core in the build graph.
type Adversary func(p *te.Problem, benign *tensor.Dense) (*tensor.Dense, error)

// Config wires a scenario to a concrete serving setup.
type Config struct {
	// Problem is the base (undamaged) TE problem; its tunnel set is
	// reused for damaged topologies — failed links keep
	// topology.FailedCapacity, so tunnel structure survives and
	// te.Rescale steers traffic off dead tunnels, the same convention as
	// the rest of the perturbation battery.
	Problem *te.Problem
	// Traffic configures the base demand series. Scenario.Total, when
	// set, overrides Traffic.Total.
	Traffic traffic.SeriesConfig
	// Adversary, when non-nil, supplies demands for adversarial windows.
	Adversary Adversary
}

// Step is one expanded timeline step: the (possibly damaged) problem,
// the demand to serve, and the fleet actions taking effect at this step.
type Step struct {
	T       int
	Problem *te.Problem
	Demand  *tensor.Dense
	// Hostile marks steps inside an adversarial window — the ground
	// truth an OOD guard is judged against.
	Hostile bool
	// Partitioned marks steps whose active cuts disconnect the topology;
	// no TE scheme can bound MLU there, so tortures skip ratio asserts.
	Partitioned bool
	// Labels lists the active events ("fiber-cut:conduit-3", ...).
	Labels []string
	// Quarantine and Release list replica indices entering/leaving
	// maintenance exactly at this step.
	Quarantine, Release []int
}

// Player deterministically expands a scenario into steps. Safe for
// sequential use; Step may be called in any order and repeatedly.
type Player struct {
	sc     Scenario
	cfg    Config
	series []*tensor.Dense

	// problems caches one rebuilt problem per set of active fiber cuts
	// (bitmask over event indices), so fingerprints stay stable across
	// steps sharing a damage state — which is what lets the serving
	// cache and topology sharding behave as they would in production.
	problems    map[uint64]*te.Problem
	partitioned map[uint64]bool
}

// NewPlayer validates the scenario against the base problem and
// precomputes the base traffic series.
func NewPlayer(sc Scenario, cfg Config) (*Player, error) {
	if cfg.Problem == nil {
		return nil, errors.New("scenario: Config.Problem is required")
	}
	if sc.Steps <= 0 {
		return nil, fmt.Errorf("scenario %q: steps must be positive", sc.Name)
	}
	if err := Validate(sc, cfg.Problem.Graph); err != nil {
		return nil, err
	}
	cuts := 0
	for _, e := range sc.Events {
		if e.Kind == KindFiberCut {
			cuts++
		}
	}
	if cuts > 64 {
		return nil, fmt.Errorf("scenario %q: %d fiber-cut events exceed the 64-cut mask", sc.Name, cuts)
	}
	if sc.Total > 0 {
		cfg.Traffic.Total = sc.Total
	}
	if cfg.Traffic.Total <= 0 {
		cfg.Traffic = traffic.DefaultSeriesConfig(float64(cfg.Problem.Graph.NumNodes) * 10)
	}
	return &Player{
		sc:          sc,
		cfg:         cfg,
		series:      traffic.Series(cfg.Problem.Graph, sc.Steps, cfg.Traffic, sc.Seed),
		problems:    map[uint64]*te.Problem{0: cfg.Problem},
		partitioned: map[uint64]bool{},
	}, nil
}

// Steps returns the timeline length.
func (pl *Player) Steps() int { return pl.sc.Steps }

// Step expands timeline step t.
func (pl *Player) Step(t int) (Step, error) {
	if t < 0 || t >= pl.sc.Steps {
		return Step{}, fmt.Errorf("scenario %q: step %d outside [0,%d)", pl.sc.Name, t, pl.sc.Steps)
	}
	out := Step{T: t}

	// Damage state: all fiber cuts active at t, as a bitmask over the
	// scenario's cut events in order.
	var mask uint64
	cutIdx := 0
	for _, e := range pl.sc.Events {
		if e.Kind != KindFiberCut {
			continue
		}
		if e.active(t, pl.sc.Steps) {
			mask |= 1 << uint(cutIdx)
		}
		cutIdx++
	}
	p, err := pl.problemFor(mask)
	if err != nil {
		return Step{}, err
	}
	out.Problem = p
	out.Partitioned = pl.partitioned[mask]
	if out.Partitioned {
		out.Labels = append(out.Labels, "partitioned")
	}

	// Demand: base series entry transformed by the active demand events,
	// in script order.
	tm := pl.series[t]
	for i, e := range pl.sc.Events {
		if !e.active(t, pl.sc.Steps) {
			continue
		}
		switch e.Kind {
		case KindFiberCut:
			out.Labels = append(out.Labels, "fiber-cut:"+e.SRLG.Name)
		case KindSustainedShift:
			// The target regime is a pure function of (scenario seed,
			// event index), so every replay blends toward the same one.
			rng := rand.New(rand.NewSource(pl.sc.Seed ^ int64(i+1)*0x9e3779b97f4a7c))
			tm = traffic.SustainedShift(tm, pl.cfg.Problem.Graph, e.Alpha, rng)
			out.Labels = append(out.Labels, "sustained-shift")
		case KindFlashCrowd:
			tm = traffic.FlashCrowd(tm, e.Dst, e.Scale)
			out.Labels = append(out.Labels, fmt.Sprintf("flash-crowd:%d", e.Dst))
		case KindAdversarial:
			out.Hostile = true
			out.Labels = append(out.Labels, "adversarial")
		case KindMaintenance:
			out.Labels = append(out.Labels, "maintenance")
		}
	}
	out.Demand = traffic.DemandVector(tm, p.Tunnels.Flows)
	if out.Hostile && pl.cfg.Adversary != nil {
		d, err := pl.cfg.Adversary(p, out.Demand)
		if err != nil {
			return Step{}, fmt.Errorf("scenario %q step %d: adversary: %w", pl.sc.Name, t, err)
		}
		out.Demand = d
	}

	// Fleet actions taking effect exactly at t.
	for _, e := range pl.sc.Events {
		if e.Kind != KindMaintenance {
			continue
		}
		if e.At == t {
			out.Quarantine = append(out.Quarantine, e.Replicas...)
		}
		if e.Until == t {
			out.Release = append(out.Release, e.Replicas...)
		}
	}
	return out, nil
}

// problemFor returns the cached problem for a damage mask, building it on
// first use by failing every active SRLG on a clone of the base graph.
func (pl *Player) problemFor(mask uint64) (*te.Problem, error) {
	if p, ok := pl.problems[mask]; ok {
		return p, nil
	}
	g := pl.cfg.Problem.Graph
	partitioned := false
	cutIdx := 0
	for _, e := range pl.sc.Events {
		if e.Kind != KindFiberCut {
			continue
		}
		if mask&(1<<uint(cutIdx)) != 0 {
			failed, err := g.FailSRLG(e.SRLG)
			var de *topology.DisconnectionError
			switch {
			case err == nil:
				g = failed
			case errors.As(err, &de):
				// A real disaster does not stop at the partition
				// boundary: proceed on the damaged graph and let the
				// step carry the label.
				g = failed
				partitioned = true
			default:
				return nil, fmt.Errorf("scenario %q: %w", pl.sc.Name, err)
			}
		}
		cutIdx++
	}
	p := te.NewProblem(g, pl.cfg.Problem.Tunnels)
	pl.problems[mask] = p
	pl.partitioned[mask] = partitioned
	return p, nil
}

// Auto builds a canned correlated-disaster script for the given problem:
// a mid-run SRLG fiber cut, a 40x flash crowd, a sustained regime shift,
// an adversarial window, and a maintenance wave over the first two
// replicas — the representative "everything goes wrong at once" drill
// used by tereplay -scenario auto and the fleet torture. Deterministic
// in (problem, replicas, steps, seed).
func Auto(p *te.Problem, replicas, steps int, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{Name: "auto-disaster", Seed: seed, Steps: steps}
	third := steps / 3
	if third < 1 {
		third = 1
	}
	if groups := p.Graph.RandomSRLGs(1, 3, rng); len(groups) > 0 {
		sc.Events = append(sc.Events, Event{
			Kind: KindFiberCut, At: third, Until: 2 * third, SRLG: groups[0],
		})
	}
	nodes := p.Graph.EdgeNodeList()
	sc.Events = append(sc.Events,
		Event{Kind: KindFlashCrowd, At: third / 2, Until: 2 * third, Dst: nodes[rng.Intn(len(nodes))], Scale: 40},
		Event{Kind: KindSustainedShift, At: 2 * third, Alpha: 0.5},
		Event{Kind: KindAdversarial, At: 2 * third},
	)
	if replicas > 0 {
		n := 2
		if n > replicas {
			n = replicas
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sc.Events = append(sc.Events, Event{Kind: KindMaintenance, At: third, Until: 2 * third, Replicas: idx})
	}
	return sc
}
