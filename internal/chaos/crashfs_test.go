package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"harpte/internal/fsio"
)

// driveProtocol runs a miniature atomic-write protocol (the same op
// sequence SaveCheckpoint uses) through fs, ignoring errors — crash
// schedules are expected to fail it partway.
func driveProtocol(dir string, fs fsio.FS, payload []byte) {
	target := filepath.Join(dir, "blob")
	f, err := fs.CreateTemp(dir, "blob.tmp-")
	if err != nil {
		return
	}
	half := len(payload) / 2
	if _, err := f.Write(payload[:half]); err != nil {
		f.Close()
		fs.Remove(f.Name())
		return
	}
	if _, err := f.Write(payload[half:]); err != nil {
		f.Close()
		fs.Remove(f.Name())
		return
	}
	if f.Sync() != nil || f.Close() != nil {
		return
	}
	if fs.Rename(f.Name(), target) != nil {
		return
	}
	fs.SyncDir(dir)
}

// TestCrashFSDeterministic: two runs from the same seed and plan replay
// identical fault sequences, op for op — the replayability contract every
// torture failure report depends on.
func TestCrashFSDeterministic(t *testing.T) {
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	plans := []CrashPlan{
		{Seed: 7, KillAtProgress: -1},
		{Seed: 7, KillAtProgress: 150},
		{Seed: 7, KillAtProgress: 150, DropSyncs: true},
		{Seed: 7, KillAtProgress: 302, ShortWriteEvery: 2},
	}
	for _, plan := range plans {
		a, b := NewCrashFS(plan), NewCrashFS(plan)
		driveProtocol(t.TempDir(), a, payload)
		driveProtocol(t.TempDir(), b, payload)
		la, lb := a.Log(), b.Log()
		if len(la) != len(lb) {
			t.Fatalf("plan %+v: log lengths differ: %d vs %d\nA: %v\nB: %v", plan, len(la), len(lb), la, lb)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("plan %+v: op %d differs: %q vs %q", plan, i, la[i], lb[i])
			}
		}
		if a.Progress() != b.Progress() || a.Killed() != b.Killed() {
			t.Fatalf("plan %+v: progress/killed state diverged", plan)
		}
	}
}

// TestCrashFSSeedChangesSchedule: different seeds produce different fault
// outcomes (otherwise the "seeded" knob would be decorative).
func TestCrashFSSeedChangesSchedule(t *testing.T) {
	payload := make([]byte, 300)
	differs := false
	base := NewCrashFS(CrashPlan{Seed: 1, KillAtProgress: 200, DropSyncs: true})
	driveProtocol(t.TempDir(), base, payload)
	for seed := int64(2); seed < 12; seed++ {
		fs := NewCrashFS(CrashPlan{Seed: seed, KillAtProgress: 200, DropSyncs: true})
		driveProtocol(t.TempDir(), fs, payload)
		la, lb := base.Log(), fs.Log()
		if len(la) != len(lb) {
			differs = true
			break
		}
		for i := range la {
			if la[i] != lb[i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("ten different seeds produced byte-identical fault schedules")
	}
}

// TestCrashFSKillTearsWrite: a write crossing the kill point lands exactly
// the prefix up to it (before page-cache loss), and every later op fails
// with ErrCrashed.
func TestCrashFSKillTearsWrite(t *testing.T) {
	dir := t.TempDir()
	// Progress 0 is the createtemp op, so the kill at 10 lands 10 bytes in.
	fs := NewCrashFS(CrashPlan{Seed: 3, KillAtProgress: 11})
	f, err := fs.CreateTemp(dir, "x-")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(make([]byte, 64))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("write crossing kill point: got n=%d err=%v, want ErrCrashed", n, err)
	}
	if n != 10 {
		t.Fatalf("surviving prefix %d bytes, want 10", n)
	}
	if _, err := f.Write([]byte{1}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if err := fs.Rename(f.Name(), filepath.Join(dir, "y")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	if !fs.Killed() {
		t.Fatal("Killed() false after crash")
	}
}

// TestCrashFSShortWrite: the transient short-write fault returns
// ErrShortWrite without killing the machine.
func TestCrashFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := NewCrashFS(CrashPlan{Seed: 5, KillAtProgress: -1, ShortWriteEvery: 1})
	f, err := fs.CreateTemp(dir, "x-")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write(make([]byte, 64))
	if !errors.Is(err, ErrShortWrite) {
		t.Fatalf("want ErrShortWrite, got n=%d err=%v", n, err)
	}
	if n >= 64 {
		t.Fatalf("short write landed %d of 64 bytes", n)
	}
	if fs.Killed() {
		t.Fatal("short write killed the machine")
	}
}

// TestCrashFSDroppedSyncLosesData: with DropSyncs, data "fsynced" before
// the kill can still be lost — the layer truncates to a seeded durable
// prefix.
func TestCrashFSDroppedSyncLosesData(t *testing.T) {
	lost := false
	for seed := int64(0); seed < 20 && !lost; seed++ {
		dir := t.TempDir()
		// Kill on the op after sync: createtemp(1) + 64 bytes + sync(1) = 66.
		fs := NewCrashFS(CrashPlan{Seed: seed, KillAtProgress: 66, DropSyncs: true})
		f, err := fs.CreateTemp(dir, "x-")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		name := f.Name()
		f.Close() // lands on the kill point
		fi, err := os.Stat(name)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() < 64 {
			lost = true
		}
	}
	if !lost {
		t.Fatal("dropped fsync never lost data across 20 seeds")
	}
}

// TestFlakyFSRecovers: the first N attempts fail with the injected error,
// later ones succeed.
func TestFlakyFSRecovers(t *testing.T) {
	dir := t.TempDir()
	sentinel := errors.New("disk full")
	fs := NewFlakyFS(2, sentinel)
	for i := 0; i < 2; i++ {
		if _, err := fs.CreateTemp(dir, "x-"); !errors.Is(err, sentinel) {
			t.Fatalf("attempt %d: want injected error, got %v", i, err)
		}
	}
	f, err := fs.CreateTemp(dir, "x-")
	if err != nil {
		t.Fatalf("attempt 3 should succeed: %v", err)
	}
	f.Close()
	if fs.Calls() != 3 {
		t.Fatalf("calls = %d, want 3", fs.Calls())
	}
}
