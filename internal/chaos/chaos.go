// Package chaos is a fault-injection harness for the resilience tests: it
// simulates the failure modes the checkpoint/serving stack must survive —
// crashes that tear a file mid-write (CrashFS, a fsio.FS with a
// seed-replayable kill/short-write/dropped-fsync schedule), transient IO
// error windows (FlakyFS), storage bit rot, and numerically poisoned
// training batches. Every injector is deterministic: the same seed and
// plan replay the identical fault sequence, so any torture failure is
// reproducible from its seed alone. Production code never imports this
// package; tests use it to prove every guard actually fires.
package chaos

import (
	"fmt"
	"io"
	"math"
	"os"
)

// TruncatingWriter passes writes through to W until Limit bytes have been
// written, then silently drops the rest while still reporting success —
// the observable effect of a process killed mid-write on a filesystem
// that had flushed only a prefix. Err, when non-nil, is returned instead
// of silently dropping, modeling a disk-full/IO error mid-stream.
type TruncatingWriter struct {
	W     io.Writer
	Limit int64
	Err   error // returned once the limit is hit; nil = silent truncation

	written int64
}

func (t *TruncatingWriter) Write(p []byte) (int, error) {
	remaining := t.Limit - t.written
	if remaining <= 0 {
		if t.Err != nil {
			return 0, t.Err
		}
		return len(p), nil
	}
	if int64(len(p)) <= remaining {
		n, err := t.W.Write(p)
		t.written += int64(n)
		return n, err
	}
	n, err := t.W.Write(p[:remaining])
	t.written += int64(n)
	if err != nil {
		return n, err
	}
	if t.Err != nil {
		return n, t.Err
	}
	return len(p), nil
}

// FlipBit flips one bit of buf at byte offset off.
func FlipBit(buf []byte, off int, bit uint) {
	buf[off] ^= 1 << (bit % 8)
}

// CorruptFile flips one bit of the file at path at byte offset off,
// simulating storage bit rot. A negative off counts from the end.
func CorruptFile(path string, off int64, bit uint) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if off < 0 {
		off += int64(len(data))
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("chaos: offset %d out of range for %d-byte file", off, len(data))
	}
	FlipBit(data, int(off), bit)
	return os.WriteFile(path, data, 0o644)
}

// TruncateFile cuts the file at path down to n bytes (a torn write). A
// negative n removes |n| bytes from the end.
func TruncateFile(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if n < 0 {
		n += fi.Size()
	}
	if n < 0 {
		n = 0
	}
	return os.Truncate(path, n)
}

// NaNAfter returns a loss hook (see core.TrainConfig.LossHook) that passes
// the first n batch losses through untouched and replaces every later one
// with NaN — poisoning training exactly the way an exploding gradient or a
// corrupted input batch would present to the health guards.
func NaNAfter(n int) func(float64) float64 {
	calls := 0
	return func(loss float64) float64 {
		calls++
		if calls > n {
			return math.NaN()
		}
		return loss
	}
}

// NaNEvery returns a loss hook that poisons every k-th batch (1-based),
// modeling intermittent bad batches rather than a permanently wedged run.
func NaNEvery(k int) func(float64) float64 {
	calls := 0
	return func(loss float64) float64 {
		calls++
		if k > 0 && calls%k == 0 {
			return math.NaN()
		}
		return loss
	}
}
