package chaos

// This file is the crash-consistency torture layer: a fsio.FS that
// executes the atomic checkpoint-write protocol against the real
// filesystem while simulating a machine that dies at an arbitrary,
// seed-replayable point — including the parts of a crash POSIX makes
// subtle. Specifically:
//
//   - Kill at any byte offset: a write that crosses the kill point lands
//     only its prefix (a short write torn by the crash).
//   - Lost page cache: at kill time, every file's bytes beyond its last
//     fsync survive only partially (a seeded random amount of the
//     unsynced suffix is kept), exactly like unflushed page cache.
//   - Dropped fsyncs: optionally, File.Sync reports success without
//     making anything durable — the lying-disk scenario journaling
//     filesystems are famous for.
//   - Undurable renames: a rename followed by a crash before the parent
//     directory fsync may or may not survive (seeded coin flip); when it
//     does not, the directory entry reverts to the pre-rename state.
//
// All randomness comes from one seeded RNG and every primitive appends to
// an op log, so a fault schedule is fully replayable: same plan, same
// inputs → bit-identical sequence of faults (TestCrashFSDeterministic).

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"harpte/internal/fsio"
)

// ErrCrashed is the error every CrashFS primitive returns once the
// simulated machine has died (and the error a write in progress at the
// kill point returns after landing its surviving prefix).
var ErrCrashed = errors.New("chaos: simulated crash")

// CrashPlan is a deterministic fault schedule for a CrashFS.
type CrashPlan struct {
	// Seed drives every random choice the layer makes (temp-file names,
	// how much unsynced data survives the kill, whether an un-fsynced
	// rename survives). Two CrashFS with the same plan replay identical
	// fault sequences on identical op streams.
	Seed int64
	// KillAtProgress is the progress point at which the machine dies.
	// Progress advances by one unit per byte written and one unit per
	// metadata operation (create, sync, close, rename, remove, dir-sync);
	// the op that crosses the kill point is the one torn by the crash.
	// Negative disables the kill (useful for measuring a protocol's total
	// progress with Progress).
	KillAtProgress int64
	// DropSyncs makes File.Sync report success without marking the data
	// durable, so the kill can tear even "fsynced" files.
	DropSyncs bool
	// ShortWriteEvery, when > 0, turns every n-th Write call into a short
	// write: only a seeded random prefix lands and io.ErrShortWrite-style
	// failure (ErrShortWrite) is returned. Models transient IO errors
	// (disk briefly full, NFS hiccup) rather than a crash.
	ShortWriteEvery int
}

// ErrShortWrite tags the transient short-write fault injected by
// CrashPlan.ShortWriteEvery, so tests can assert retry paths saw it.
var ErrShortWrite = errors.New("chaos: injected short write")

// CrashFS implements fsio.FS over the real filesystem with the fault
// schedule of a CrashPlan. It is safe for concurrent use; the fault
// sequence is deterministic for a deterministic op stream.
type CrashFS struct {
	plan CrashPlan

	mu       sync.Mutex
	rng      *rand.Rand
	progress int64
	killed   bool
	writes   int // Write calls seen, for ShortWriteEvery
	log      []string

	files   []*crashFile
	pending []pendingRename
}

// crashFile tracks one file's durability state: bytes written versus bytes
// the simulated disk has actually persisted.
type crashFile struct {
	path    string // current path (updated by Rename)
	f       *os.File
	written int64
	synced  int64
	removed bool
}

// pendingRename is a completed rename whose parent directory has not been
// fsynced yet: on a kill it survives only by coin flip.
type pendingRename struct {
	tmp     string // source path the entry reverts to
	target  string
	oldData []byte // target's pre-rename content
	hadOld  bool
}

// NewCrashFS returns a CrashFS executing plan. The returned layer operates
// on real paths (use a fresh temp directory per run).
func NewCrashFS(plan CrashPlan) *CrashFS {
	return &CrashFS{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Progress returns how many progress units have been consumed so far.
func (c *CrashFS) Progress() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progress
}

// Killed reports whether the simulated machine has died.
func (c *CrashFS) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Log returns the op/fault sequence recorded so far. Paths are logged by
// base name only, so logs from runs in different temp directories compare
// equal — the determinism test diffs two of these.
func (c *CrashFS) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.log...)
}

func (c *CrashFS) logf(format string, args ...any) {
	c.log = append(c.log, fmt.Sprintf(format, args...))
}

// opLocked charges one progress unit for a metadata op, killing the
// machine if the op lands on the kill point. It reports whether the op
// crashed (the caller must then return ErrCrashed without acting).
func (c *CrashFS) opLocked(name string) bool {
	if c.killed {
		return true
	}
	if c.plan.KillAtProgress >= 0 && c.progress >= c.plan.KillAtProgress {
		c.logf("%s CRASH", name)
		c.killLocked()
		return true
	}
	c.progress++
	return false
}

// killLocked flips the machine to dead and applies the post-crash disk
// state: un-fsynced renames survive by coin flip (reverting the directory
// entry when they do not), then every file loses a seeded random amount of
// its un-fsynced suffix.
func (c *CrashFS) killLocked() {
	if c.killed {
		return
	}
	c.killed = true
	// Directory entries first: a reverted rename moves the new file back
	// to its temp name, so the content truncation below finds it there.
	for _, p := range c.pending {
		if c.rng.Intn(2) == 0 {
			c.logf("crash: rename %s survived", filepath.Base(p.target))
			continue
		}
		c.logf("crash: rename %s reverted", filepath.Base(p.target))
		_ = os.Rename(p.target, p.tmp)
		for _, f := range c.files {
			if f.path == p.target {
				f.path = p.tmp
			}
		}
		if p.hadOld {
			_ = os.WriteFile(p.target, p.oldData, 0o644)
		}
	}
	c.pending = nil
	for _, f := range c.files {
		if f.removed {
			continue
		}
		_ = f.f.Close()
		unsynced := f.written - f.synced
		if unsynced <= 0 {
			continue
		}
		durable := f.synced + c.rng.Int63n(unsynced+1)
		c.logf("crash: %s truncated %d -> %d", filepath.Base(f.path), f.written, durable)
		_ = os.Truncate(f.path, durable)
	}
}

// CreateTemp creates a new file in dir with a deterministic (seeded)
// unique name, charging one progress unit.
func (c *CrashFS) CreateTemp(dir, pattern string) (fsio.File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("createtemp") {
		return nil, ErrCrashed
	}
	for tries := 0; ; tries++ {
		name := filepath.Join(dir, pattern+strconv.FormatInt(c.rng.Int63(), 36))
		f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
		if os.IsExist(err) && tries < 100 {
			continue
		}
		if err != nil {
			return nil, err
		}
		cf := &crashFile{path: name, f: f}
		c.files = append(c.files, cf)
		c.logf("createtemp %s", filepath.Base(name))
		return &crashHandle{fs: c, file: cf}, nil
	}
}

// Rename performs the rename, recording it as un-durable until the parent
// directory is fsynced; a kill before that may revert it.
func (c *CrashFS) Rename(oldpath, newpath string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("rename") {
		return ErrCrashed
	}
	old, err := os.ReadFile(newpath)
	hadOld := err == nil
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	for _, f := range c.files {
		if f.path == oldpath {
			f.path = newpath
		}
	}
	c.pending = append(c.pending, pendingRename{
		tmp: oldpath, target: newpath, oldData: old, hadOld: hadOld,
	})
	c.logf("rename %s -> %s", filepath.Base(oldpath), filepath.Base(newpath))
	return nil
}

// Remove deletes the file and stops tracking it.
func (c *CrashFS) Remove(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("remove") {
		return ErrCrashed
	}
	for _, f := range c.files {
		if f.path == name {
			f.removed = true
		}
	}
	c.logf("remove %s", filepath.Base(name))
	return os.Remove(name)
}

// SyncDir makes every completed rename under dir durable.
func (c *CrashFS) SyncDir(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("syncdir") {
		return ErrCrashed
	}
	kept := c.pending[:0]
	for _, p := range c.pending {
		if filepath.Dir(p.target) != dir {
			kept = append(kept, p)
		}
	}
	c.pending = kept
	// The directory path varies across runs (temp dirs); keep the log
	// entry path-free so same-seed logs compare equal.
	c.logf("syncdir")
	return nil
}

// crashHandle is the fsio.File a CrashFS hands out.
type crashHandle struct {
	fs   *CrashFS
	file *crashFile
}

func (h *crashHandle) Name() string { return h.file.path }

// Write lands p on the real file, torn at the kill point: the bytes up to
// the kill survive (subject to the page-cache loss applied at kill time),
// the rest never happened.
func (h *crashHandle) Write(p []byte) (int, error) {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.killed {
		return 0, ErrCrashed
	}
	c.writes++
	if se := c.plan.ShortWriteEvery; se > 0 && c.writes%se == 0 && len(p) > 0 {
		n := int(c.rng.Int63n(int64(len(p))))
		wn, werr := h.file.f.Write(p[:n])
		h.file.written += int64(wn)
		c.progress += int64(wn)
		c.logf("write %d/%d SHORT", wn, len(p))
		if werr != nil {
			return wn, werr
		}
		return wn, ErrShortWrite
	}
	if c.plan.KillAtProgress >= 0 {
		remaining := c.plan.KillAtProgress - c.progress
		if remaining < int64(len(p)) {
			n := int(remaining)
			if n < 0 {
				n = 0
			}
			wn, _ := h.file.f.Write(p[:n])
			h.file.written += int64(wn)
			c.progress += int64(wn)
			c.logf("write %d/%d CRASH", wn, len(p))
			c.killLocked()
			return wn, ErrCrashed
		}
	}
	wn, err := h.file.f.Write(p)
	h.file.written += int64(wn)
	c.progress += int64(wn)
	c.logf("write %d", wn)
	return wn, err
}

// Sync marks the file's bytes durable — unless the plan drops fsyncs, in
// which case it lies (reports success, persists nothing).
func (h *crashHandle) Sync() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("sync") {
		return ErrCrashed
	}
	if c.plan.DropSyncs {
		c.logf("sync DROPPED")
		return nil
	}
	if err := h.file.f.Sync(); err != nil {
		return err
	}
	h.file.synced = h.file.written
	c.logf("sync")
	return nil
}

// Close closes the real file. Durability is unaffected (only Sync makes
// bytes crash-proof).
func (h *crashHandle) Close() error {
	c := h.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opLocked("close") {
		return ErrCrashed
	}
	c.logf("close %s", filepath.Base(h.file.path))
	return h.file.f.Close()
}

// FlakyFS wraps the real filesystem, failing the first Failures CreateTemp
// calls with Err — a transient disk-full or unreachable-mount window —
// then behaving normally. Deterministic by construction; the checkpoint
// retry-with-backoff regression test is built on it.
type FlakyFS struct {
	fsio.OS
	// Err is returned by the failing calls (nil means a generic error).
	Err error

	mu       sync.Mutex
	failures int
	calls    int
}

// NewFlakyFS returns a FlakyFS whose first failures CreateTemp calls fail
// with err.
func NewFlakyFS(failures int, err error) *FlakyFS {
	if err == nil {
		err = errors.New("chaos: injected transient IO error")
	}
	return &FlakyFS{Err: err, failures: failures}
}

// Calls returns how many CreateTemp calls the layer has seen.
func (f *FlakyFS) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// CreateTemp fails for the first Failures calls, then delegates to the OS.
func (f *FlakyFS) CreateTemp(dir, pattern string) (fsio.File, error) {
	f.mu.Lock()
	f.calls++
	fail := f.calls <= f.failures
	f.mu.Unlock()
	if fail {
		return nil, f.Err
	}
	return f.OS.CreateTemp(dir, pattern)
}
