// Failover: what happens to GEANT when links fail?
//
// This example trains HARP on the healthy GEANT topology, then walks every
// single-link failure scenario and compares three reactions:
//
//   - HARP recomputing splits on the failed topology (no rescaling —
//     the recurrent adjustment unit steers traffic off dead tunnels);
//   - the pre-failure splits with local rescaling (what a fixed-topology
//     scheme like DOTE must do); and
//   - the exact LP optimum on the failed topology.
//
// Run with:
//
//	go run ./examples/failover [-metrics-addr host:port]
//
// With -metrics-addr the run serves the observability admin endpoint:
// training gauges and per-stage forward-pass histograms appear on /metrics
// while the failure sweep executes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"harpte/internal/core"
	"harpte/internal/lp"
	"harpte/internal/obs"
	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	log.SetFlags(0)
	metrics := flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port")
	flag.Parse()
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		core.RegisterRuntimeGauges(reg)
		admin, err := obs.ServeAdmin(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		log.Printf("metrics: http://%s/metrics", admin.Addr())
	}
	g := topology.Geant()
	set := tunnels.Compute(g, 4)
	healthy := te.NewProblem(g, set)
	fmt.Printf("GEANT: %d nodes, %d links, %d flows\n",
		g.NumNodes, g.NumEdges()/2, healthy.NumFlows())

	// Train HARP on healthy traffic (capped below access capacity so core
	// links are the binding constraint, as in real WAN matrices).
	cfg := traffic.DefaultSeriesConfig(520)
	cfg.NoiseSigma = 0.3
	tms := traffic.Series(g, 36, cfg, 7)
	for _, tm := range tms {
		traffic.CapToAccess(tm, g, 0.35)
	}
	model := core.New(core.DefaultConfig())
	if reg != nil {
		model.EnableTelemetry(reg)
	}
	hctx := model.Context(healthy)
	var train, val []core.Sample
	for i, tm := range tms[:32] {
		s := core.Sample{Ctx: hctx, Demand: traffic.DemandVector(tm, set.Flows)}
		if i < 27 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 40
	tc.Metrics = reg
	model.Fit(train, val, tc)

	// Serve the sweep through the guarded path: validated inputs, vetted
	// outputs, a per-request deadline, and circuit breakers so a sick
	// model stops burning budget before every fallback.
	srv := resilience.NewServer(model, resilience.Options{
		Deadline:         10 * time.Second,
		BreakerThreshold: 3,
	})
	if reg != nil {
		srv.EnableTelemetry(reg)
	}

	// The test matrix and the splits HARP chose before any failure.
	demand := traffic.DemandVector(tms[34], set.Flows)
	pre := srv.Serve(healthy, demand)
	if pre.Err != nil {
		log.Fatalf("healthy serve failed: %v", pre.Err)
	}
	preSplits := pre.Splits
	fmt.Printf("healthy MLU: HARP %.4f (tier %v), optimal %.4f\n\n",
		healthy.MLU(preSplits, demand), pre.Tier, lp.Solve(healthy, demand).MLU)

	fmt.Println("link failure -> MLU (HARP recompute | rescale old splits | optimal)")
	worstHARP, worstRescale := 0.0, 0.0
	healthyOpt := lp.Solve(healthy, demand).MLU
	for _, link := range g.UndirectedLinks() {
		failedG := g.WithFailedLink(link[0], link[1])
		if !failedG.Connected() {
			continue
		}
		failed := te.NewProblem(failedG, set)
		optMLU := lp.Solve(failed, demand).MLU
		if optMLU > 10*healthyOpt {
			// This failure strands a flow (every provisioned tunnel crosses
			// the link); no TE scheme can route around it — skip.
			fmt.Printf("  %2d<->%-2d   (strands a flow; skipped)\n", link[0], link[1])
			continue
		}

		dec := srv.Serve(failed, demand)
		if dec.Err != nil {
			fmt.Printf("  %2d<->%-2d   (serve failed: %v)\n", link[0], link[1], dec.Err)
			continue
		}
		harpMLU := failed.MLU(dec.Splits, demand)
		rescaled := te.Rescale(failed, preSplits)
		rescaleMLU := failed.MLU(rescaled, demand)

		hn, rn := te.NormMLU(harpMLU, optMLU), te.NormMLU(rescaleMLU, optMLU)
		if hn > worstHARP {
			worstHARP = hn
		}
		if rn > worstRescale {
			worstRescale = rn
		}
		fmt.Printf("  %2d<->%-2d   %.4f (%.2fx) | %.4f (%.2fx) | %.4f\n",
			link[0], link[1], harpMLU, hn, rescaleMLU, rn, optMLU)
	}
	fmt.Printf("\nworst-case NormMLU: HARP recompute %.2f, rescaling %.2f\n",
		worstHARP, worstRescale)
	counts := srv.TierCounts()
	st := srv.Stats()
	fmt.Printf("serving tiers: full=%d reduced-rau=%d ecmp=%d | breaker trips=%d short-circuits=%d\n",
		counts[resilience.TierFull], counts[resilience.TierReducedRAU],
		counts[resilience.TierECMP], st.BreakerTrips, st.BreakerShortCircuits)
}
