// Failover: what happens to GEANT when links fail?
//
// This example trains HARP on the healthy GEANT topology, then walks every
// single-link failure scenario and compares three reactions:
//
//   - HARP recomputing splits on the failed topology (no rescaling —
//     the recurrent adjustment unit steers traffic off dead tunnels);
//   - the pre-failure splits with local rescaling (what a fixed-topology
//     scheme like DOTE must do); and
//   - the exact LP optimum on the failed topology.
//
// Run with:
//
//	go run ./examples/failover [-replicas N] [-deadline D]
//	    [-max-concurrent N] [-max-queue N]
//	    [-breaker-threshold N] [-breaker-cooloff D]
//	    [-hedge-quantile Q] [-retry-budget R]
//	    [-metrics-addr host:port]
//
// The sweep is served through a self-healing fleet of -replicas model
// replicas (see README.md for the full flag table): health-checked
// dispatch, hedged requests after the adaptive -hedge-quantile latency
// delay, and failover retries bounded by the -retry-budget token bucket.
// With -metrics-addr the run serves the observability admin endpoint:
// training gauges, per-stage forward-pass histograms, and the
// harp_fleet_* series appear on /metrics while the failure sweep
// executes.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"harpte/internal/core"
	"harpte/internal/fleet"
	"harpte/internal/lp"
	"harpte/internal/obs"
	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	log.SetFlags(0)
	var (
		replicas = flag.Int("replicas", 2, "model replicas behind the fleet dispatcher")
		deadline = flag.Duration("deadline", 10*time.Second, "per-request wall-clock budget before degrading to ECMP (0 disables)")
		maxConc  = flag.Int("max-concurrent", 0, "per replica: concurrent serving slots (0 disables admission control)")
		maxQueue = flag.Int("max-queue", 0, "per replica: queued requests beyond the gate before shedding")
		brkN     = flag.Int("breaker-threshold", 3, "per replica: consecutive tier failures before its circuit opens (0 disables breakers)")
		brkCool  = flag.Duration("breaker-cooloff", 5*time.Second, "per replica: how long a tripped tier stays open before a half-open probe")
		hedgeQ   = flag.Float64("hedge-quantile", 0.95, "fleet: latency quantile after which a hedge fires on a second replica (0 disables hedging)")
		retryBud = flag.Float64("retry-budget", 0.1, "fleet: retry tokens earned per request; hedges and retries each spend one (negative disables)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port")
	)
	flag.Parse()
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		core.RegisterRuntimeGauges(reg)
		admin, err := obs.ServeAdmin(*metrics, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer admin.Close()
		log.Printf("metrics: http://%s/metrics", admin.Addr())
	}
	g := topology.Geant()
	set := tunnels.Compute(g, 4)
	healthy := te.NewProblem(g, set)
	fmt.Printf("GEANT: %d nodes, %d links, %d flows\n",
		g.NumNodes, g.NumEdges()/2, healthy.NumFlows())

	// Train HARP on healthy traffic (capped below access capacity so core
	// links are the binding constraint, as in real WAN matrices).
	cfg := traffic.DefaultSeriesConfig(520)
	cfg.NoiseSigma = 0.3
	tms := traffic.Series(g, 36, cfg, 7)
	for _, tm := range tms {
		traffic.CapToAccess(tm, g, 0.35)
	}
	model := core.New(core.DefaultConfig())
	if reg != nil {
		model.EnableTelemetry(reg)
	}
	hctx := model.Context(healthy)
	var train, val []core.Sample
	for i, tm := range tms[:32] {
		s := core.Sample{Ctx: hctx, Demand: traffic.DemandVector(tm, set.Flows)}
		if i < 27 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 40
	tc.Metrics = reg
	model.Fit(train, val, tc)

	// Serve the sweep through a self-healing fleet over the guarded path:
	// each replica validates inputs, vets outputs, enforces the deadline,
	// and runs circuit breakers; the dispatcher on top health-checks the
	// replicas, hedges past slow ones, and retries past broken ones under
	// the token budget.
	if *replicas < 1 {
		*replicas = 1
	}
	demand := traffic.DemandVector(tms[34], set.Flows)
	backends := make([]fleet.Replica, *replicas)
	for i := range backends {
		srv := resilience.NewServer(model, resilience.Options{
			Deadline:         *deadline,
			MaxConcurrent:    *maxConc,
			MaxQueueDepth:    *maxQueue,
			BreakerThreshold: *brkN,
			BreakerCooloff:   *brkCool,
		})
		if reg != nil {
			srv.EnableTelemetry(reg)
		}
		backends[i] = fleet.Local{S: srv}
	}
	fl := fleet.New(backends, fleet.Options{
		Deadline:      *deadline,
		HedgeQuantile: *hedgeQ,
		RetryBudget:   *retryBud,
		Probe:         healthy,
		ProbeDemand:   demand,
	})
	defer fl.Close()
	if reg != nil {
		fl.EnableTelemetry(reg)
	}

	// The test matrix and the splits HARP chose before any failure.
	pre := fl.Serve(healthy, demand)
	if pre.Err != nil {
		log.Fatalf("healthy serve failed: %v", pre.Err)
	}
	preSplits := pre.Splits
	fmt.Printf("healthy MLU: HARP %.4f (tier %v), optimal %.4f\n\n",
		healthy.MLU(preSplits, demand), pre.Tier, lp.Solve(healthy, demand).MLU)

	fmt.Println("link failure -> MLU (HARP recompute | rescale old splits | optimal)")
	worstHARP, worstRescale := 0.0, 0.0
	healthyOpt := lp.Solve(healthy, demand).MLU
	for _, link := range g.UndirectedLinks() {
		failedG := g.WithFailedLink(link[0], link[1])
		if !failedG.Connected() {
			continue
		}
		failed := te.NewProblem(failedG, set)
		optMLU := lp.Solve(failed, demand).MLU
		if optMLU > 10*healthyOpt {
			// This failure strands a flow (every provisioned tunnel crosses
			// the link); no TE scheme can route around it — skip.
			fmt.Printf("  %2d<->%-2d   (strands a flow; skipped)\n", link[0], link[1])
			continue
		}

		dec := fl.Serve(failed, demand)
		if dec.Err != nil {
			fmt.Printf("  %2d<->%-2d   (serve failed: %v)\n", link[0], link[1], dec.Err)
			continue
		}
		harpMLU := failed.MLU(dec.Splits, demand)
		rescaled := te.Rescale(failed, preSplits)
		rescaleMLU := failed.MLU(rescaled, demand)

		hn, rn := te.NormMLU(harpMLU, optMLU), te.NormMLU(rescaleMLU, optMLU)
		if hn > worstHARP {
			worstHARP = hn
		}
		if rn > worstRescale {
			worstRescale = rn
		}
		fmt.Printf("  %2d<->%-2d   %.4f (%.2fx) | %.4f (%.2fx) | %.4f\n",
			link[0], link[1], harpMLU, hn, rescaleMLU, rn, optMLU)
	}
	fmt.Printf("\nworst-case NormMLU: HARP recompute %.2f, rescaling %.2f\n",
		worstHARP, worstRescale)
	counts := map[resilience.Tier]int64{}
	var trips, shorts int64
	for _, b := range backends {
		srv := b.(fleet.Local).S
		for tier, n := range srv.TierCounts() {
			counts[tier] += n
		}
		st := srv.Stats()
		trips += st.BreakerTrips
		shorts += st.BreakerShortCircuits
	}
	fmt.Printf("serving tiers: full=%d reduced-rau=%d ecmp=%d | breaker trips=%d short-circuits=%d\n",
		counts[resilience.TierFull], counts[resilience.TierReducedRAU],
		counts[resilience.TierECMP], trips, shorts)
	fst := fl.Stats()
	fmt.Printf("fleet: replicas=%d (healthy=%d degraded=%d quarantined=%d) served=%d ecmp-fallback=%d hedges=%d (wins=%d) retries=%d (denied=%d) ejections=%d readmits=%d\n",
		fst.Replicas, fst.Healthy, fst.Degraded, fst.Quarantined,
		fst.Served, fst.LocalFallbacks, fst.Hedges, fst.HedgeWins,
		fst.Retries, fst.RetryBudgetDenied, fst.Ejections, fst.Readmissions)
}
