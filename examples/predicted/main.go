// Predicted: TE when only forecasts of the traffic matrix are available
// (§5.7 of the paper).
//
// Both an optimization solver and HARP can be fed a *predicted* matrix, but
// they degrade differently on the *true* one: the solver over-fits the
// forecast, while HARP-Pred — trained with predicted inputs and true-matrix
// loss — learns to hedge against forecast error.
//
// Run with:
//
//	go run ./examples/predicted
package main

import (
	"fmt"
	"log"

	"harpte/internal/core"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	log.SetFlags(0)
	g := topology.Geant()
	set := tunnels.Compute(g, 4)
	problem := te.NewProblem(g, set)

	// A hard-to-forecast traffic series: heavy per-cell noise and bursts,
	// capped below access capacity so core links are the binding
	// constraint (as in real WAN matrices).
	cfg := traffic.DefaultSeriesConfig(520)
	cfg.NoiseSigma = 0.45
	cfg.BurstProb = 0.3
	cfg.BurstScale = 4
	tms := traffic.Series(g, 80, cfg, 5)
	for _, tm := range tms {
		traffic.CapToAccess(tm, g, 0.35)
	}
	predictor := traffic.MovAvg{Window: 12}

	// HARP-Pred training samples: input = forecast, loss = truth.
	model := core.New(core.DefaultConfig())
	ctx := model.Context(problem)
	var train, val []core.Sample
	for i := 12; i < 56; i++ {
		predicted := predictor.Predict(tms[:i])
		s := core.Sample{
			Ctx:        ctx,
			Demand:     traffic.DemandVector(predicted, set.Flows),
			LossDemand: traffic.DemandVector(tms[i], set.Flows),
		}
		if i < 48 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 30
	model.Fit(train, val, tc)

	fmt.Println("snapshot  HARP-Pred  Solver-Pred   (NormMLU vs optimum on the true matrix)")
	var harpSum, solverSum float64
	n := 0
	for i := 56; i < len(tms); i++ {
		predicted := predictor.Predict(tms[:i])
		predDemand := traffic.DemandVector(predicted, set.Flows)
		trueDemand := traffic.DemandVector(tms[i], set.Flows)
		optTrue := lp.Solve(problem, trueDemand).MLU

		// HARP-Pred: forecast in, evaluate on truth.
		harpMLU := problem.MLU(model.Splits(ctx, predDemand), trueDemand)
		// Solver-Pred: optimal for the forecast, evaluated on truth.
		solverMLU := problem.MLU(lp.Solve(problem, predDemand).Splits, trueDemand)

		hn := te.NormMLU(harpMLU, optTrue)
		sn := te.NormMLU(solverMLU, optTrue)
		harpSum += hn
		solverSum += sn
		n++
		fmt.Printf("   %2d      %.3f      %.3f\n", i, hn, sn)
	}
	fmt.Printf("\nmean NormMLU: HARP-Pred %.3f vs Solver-Pred %.3f\n",
		harpSum/float64(n), solverSum/float64(n))
	fmt.Println("(the paper reports HARP-Pred winning by 5-10% median across predictors)")
}
