// Quickstart: train HARP on the Abilene backbone and compare its routing
// against the exact LP optimum on held-out traffic.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"harpte/internal/core"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	log.SetFlags(0)

	// 1. A topology: the 12-node Abilene research backbone.
	g := topology.Abilene()

	// 2. Tunnels: 4 shortest paths per source-destination pair.
	set := tunnels.Compute(g, 4)
	problem := te.NewProblem(g, set)
	fmt.Printf("Abilene: %d nodes, %d directed links, %d flows, %d tunnels\n",
		g.NumNodes, g.NumEdges(), problem.NumFlows(), set.NumTunnels())

	// 3. Traffic: a synthetic diurnal gravity-model series.
	tms := traffic.Series(g, 40, traffic.DefaultSeriesConfig(60), 1)

	// 4. A HARP model. The whole model is a few thousand parameters —
	//    the same four shared modules are reused for every tunnel.
	model := core.New(core.DefaultConfig())
	fmt.Printf("HARP parameters: %d\n", model.NumParams())
	ctx := model.Context(problem)

	// 5. Train on the first 30 matrices (last 5 of them as validation).
	var train, val []core.Sample
	for i, tm := range tms[:30] {
		s := core.Sample{Ctx: ctx, Demand: traffic.DemandVector(tm, set.Flows)}
		if i < 25 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 30
	tc.Log = os.Stdout
	result := model.Fit(train, val, tc)
	fmt.Printf("best validation MLU: %.4f\n", result.BestValMLU)

	// 6. Evaluate on the held-out matrices against the LP optimum.
	fmt.Println("\nheld-out performance (NormMLU = HARP MLU / optimal MLU):")
	for i, tm := range tms[30:] {
		demand := traffic.DemandVector(tm, set.Flows)
		splits := model.Splits(ctx, demand)
		harpMLU := problem.MLU(splits, demand)
		opt := lp.Solve(problem, demand)
		fmt.Printf("  matrix %2d: HARP %.4f  optimal %.4f  NormMLU %.3f\n",
			i, harpMLU, opt.MLU, te.NormMLU(harpMLU, opt.MLU))
	}
}
