// Transfer: the headline property — one HARP model, many topologies.
//
// This example trains a single HARP model on a WAN, then evaluates the SAME
// model (no retraining) as the network evolves: nodes are added, tunnels are
// recomputed, link capacities change, and node ids are relabeled. A scheme
// without HARP's invariances cannot even be *applied* to most of these
// variants, because its input/output dimensions are frozen.
//
// Run with:
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"log"
	"math/rand"

	"harpte/internal/core"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(11))

	// The base WAN: a 20-node random carrier topology.
	base := topology.RandomConnected("wan-v1", 20, 3.2, []float64{40, 100, 400}, 3)
	set := tunnels.Compute(base, 4)
	problem := te.NewProblem(base, set)

	model := core.New(core.DefaultConfig())
	ctx := model.Context(problem)
	tms := traffic.Series(base, 30, traffic.DefaultSeriesConfig(160), 2)
	var train, val []core.Sample
	for i, tm := range tms {
		s := core.Sample{Ctx: ctx, Demand: traffic.DemandVector(tm, set.Flows)}
		if i < 24 {
			train = append(train, s)
		} else {
			val = append(val, s)
		}
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 30
	model.Fit(train, val, tc)

	report := func(label string, p *te.Problem) {
		tm := traffic.Gravity(p.Graph.NumNodes, traffic.GravityWeights(p.Graph, rng), 160)
		demand := traffic.DemandVector(tm, p.Tunnels.Flows)
		mlu := p.MLU(model.Splits(model.Context(p), demand), demand)
		opt := lp.Solve(p, demand).MLU
		fmt.Printf("  %-34s flows=%4d  NormMLU %.3f\n", label, p.NumFlows(), te.NormMLU(mlu, opt))
	}

	fmt.Println("one trained model, applied unchanged to topology variants:")
	report("v1 (training topology)", problem)

	// Variant A: add two nodes and three links, recompute tunnels.
	v2 := base.Clone()
	v2.Name = "wan-v2"
	grown := topology.New("wan-v2", v2.NumNodes+2)
	for _, e := range v2.Edges {
		if _, dup := grown.EdgeID(e.Src, e.Dst); !dup {
			grown.AddEdge(e.Src, e.Dst, e.Capacity)
		}
	}
	grown.AddBidirectional(20, 3, 100)
	grown.AddBidirectional(20, 7, 100)
	grown.AddBidirectional(21, 20, 40)
	report("v2 (+2 nodes, +3 links, new tunnels)", te.NewProblem(grown, tunnels.Compute(grown, 4)))

	// Variant B: a partial failure halves one link.
	l := base.UndirectedLinks()[2]
	report("v1 with one link at 50% capacity", te.NewProblem(base.WithPartialFailure(l[0], l[1], 0.5), set))

	// Variant C: a complete link failure.
	report("v1 with one link failed", te.NewProblem(base.WithFailedLink(l[0], l[1]), set))

	// Variant D: tunnels shuffled (order must not matter).
	report("v1 with tunnel order shuffled", te.NewProblem(base, set.Shuffled(rng)))

	// Variant E: node ids relabeled (isomorphic network).
	perm := rng.Perm(base.NumNodes)
	permuted := base.Permute(perm)
	permSet := &tunnels.Set{K: set.K, PerFlow: set.PerFlow}
	for _, f := range set.Flows {
		permSet.Flows = append(permSet.Flows, tunnels.Flow{Src: perm[f.Src], Dst: perm[f.Dst]})
	}
	report("v1 with node ids relabeled", te.NewProblem(permuted, permSet))
}
