# Tier-1 verification gate plus extras. `make check` is what CI should run.
GO ?= go

.PHONY: check vet build test race

# check runs static analysis, the full build, the full test suite, and the
# race detector on internal/core (exercises ParallelTrainStep's shared-
# weight/private-gradient scheme under -race).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core
