# Tier-1 verification gate plus extras. `make check` is what CI should run.
GO ?= go

.PHONY: ci check vet build test race benchsmoke bench obssmoke tracesmoke verify fuzzsmoke scenariosmoke

# ci is the hosted-CI entry point (.github/workflows/ci.yml): the full
# check gate, ordered fastest-fail-first.
ci: build vet test race fuzzsmoke obssmoke tracesmoke scenariosmoke benchsmoke verify

# check runs static analysis, the full build, the full test suite, the
# race detector on internal/core (exercises ParallelTrainStep's shared-
# weight/private-gradient scheme under -race) and internal/obs (scrape-
# while-write on the metrics registry), an admin-endpoint smoke test, the
# request-tracing smoke (flight recorder spans plus the tracing-disabled
# zero-allocation pin), a one-iteration bench smoke that compiles and
# executes every benchmark once so the perf harness can never silently
# rot, the differential-oracle suite (internal/verify), and a short
# fuzzing pass over every fuzz target, and the correlated-disaster
# scenario smoke (scenariosmoke).
check: vet build test race obssmoke tracesmoke scenariosmoke benchsmoke verify fuzzsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race covers the packages with real concurrency: core's parallel train
# step, obs's scrape-while-write registry, resilience's Serve/Reload/Drain
# churn hammer plus the breaker half-open contention pin, chaos's
# fault-injecting filesystem and replica-fault injectors under torture,
# the seed-replayable scenario player, the fleet dispatcher's chaos
# tortures (hedges, retries, rolling reload mid-burst, and the
# correlated-disaster scenario), and the differential-oracle suite.
race:
	$(GO) test -race ./internal/core ./internal/obs ./internal/resilience ./internal/chaos ./internal/chaos/replica ./internal/chaos/scenario ./internal/fleet ./internal/verify

# scenariosmoke replays the seed-pinned correlated-disaster script against
# a live fleet under the race detector: SRLG fiber cut, 40x flash crowd,
# sustained shift, adversarial demands ascended through the model, and a
# maintenance wave — asserting zero hangs, vetted splits on every answer,
# a bounded MLU ratio on non-partitioned steps, and hostile demotion off
# the neural tiers and split cache. The OOD guard's serve-path contract
# (classification, demotion tiers, cache bypass, fail-open) rides along.
scenariosmoke:
	$(GO) test -race -count=1 -run 'TestFleetScenarioTorture' ./internal/fleet
	$(GO) test -count=1 -run 'TestOOD|TestAdversarialTM|TestFailSRLG' ./internal/resilience ./internal/verify ./internal/topology

# verify runs the differential-oracle suite: autograd gradients vs central
# finite differences, simplex optima vs duality/complementary-slackness
# certificates, MWU vs simplex, and HARP's permutation/edge-order
# invariance oracles (see internal/verify and DESIGN.md §Correctness).
verify:
	$(GO) test -count=1 ./internal/verify

# fuzzsmoke gives each native fuzz target a short budget (go test allows
# one -fuzz pattern per invocation, hence one line per target; ~15-30s
# total). Committed regression seeds under testdata/fuzz/ also run as
# ordinary test cases in `make test`.
fuzzsmoke:
	$(GO) test -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=2s ./internal/topology
	$(GO) test -run='^$$' -fuzz='^FuzzParseTMs$$' -fuzztime=2s ./internal/traffic
	$(GO) test -run='^$$' -fuzz='^FuzzReadCheckpoint$$' -fuzztime=2s ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzModelLoad$$' -fuzztime=2s ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzMatMul$$' -fuzztime=2s ./internal/tensor
	$(GO) test -run='^$$' -fuzz='^FuzzNewCSR$$' -fuzztime=2s ./internal/tensor
	$(GO) test -run='^$$' -fuzz='^FuzzNewCSRChecked$$' -fuzztime=2s ./internal/tensor
	$(GO) test -run='^$$' -fuzz='^FuzzConvert32$$' -fuzztime=2s ./internal/tensor
	$(GO) test -run='^$$' -fuzz='^FuzzSoftmaxRow$$' -fuzztime=2s ./internal/tensor
	$(GO) test -run='^$$' -fuzz='^FuzzCacheKey$$' -fuzztime=2s ./internal/resilience

# obssmoke boots the observability admin endpoint on a loopback port and
# scrapes /metrics, /debug/vars and /debug/pprof once.
obssmoke:
	$(GO) test -count=1 -run 'TestAdminEndpointSmoke|TestAdminRouteTable' ./internal/obs

# tracesmoke drives a coalesced burst through a traced server and checks
# the flight-recorder dump (queue waits, cache misses, batch membership
# links, per-stage forward timings, shed retention under hopeless sampling
# odds), then pins that with tracing disabled the serve path stays
# allocation-free even with SLO tracking and quality sampling attached.
tracesmoke:
	$(GO) test -count=1 -run 'TestTrace' ./internal/resilience
	$(GO) test -count=1 -run 'TestFleetTraceHedgeWinRetained|TestFleetStatsTelemetryParity' ./internal/fleet

# benchsmoke runs every benchmark exactly once in -short mode (experiment-
# scale benchmarks in the root package skip themselves under -short).
benchsmoke:
	$(GO) test -short -run='^$$' -bench=. -benchtime=1x ./...

# bench runs the perf-regression suite (hot-path micro and macro
# benchmarks with allocation counts) and records the results as the
# "current" entry of BENCH_1.json; the committed "baseline" entry is
# preserved for comparison. It then records the serving-throughput
# ledger BENCH_2.json: batched vs sequential inference (SplitsBatch and
# the micro-batch collector) and the split-cache hit vs miss path, and
# the large-topology ledger BENCH_3.json: UsCarrier-scale (158-node) and
# KDL-scale (754-node) single-snapshot inference on the float64 and
# float32 precision paths. See the Performance section of the README.
BENCH_PKGS = ./internal/tensor ./internal/autograd ./internal/core
BENCH2_RE = 'SplitsBatch16|SplitsSequential16|ServeCache|ServeBatchedBurst|ServeSequentialBurst'
BENCH3_RE = 'SplitsUsCarrier|SplitsKDL'
bench:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -run='^$$' -bench=. -benchmem $(BENCH_PKGS) | \
		/tmp/benchjson -out BENCH_1.json -cmd "go test -run='^$$' -bench=. -benchmem $(BENCH_PKGS)"
	$(GO) test -run='^$$' -bench=$(BENCH2_RE) -benchmem ./internal/core ./internal/resilience | \
		/tmp/benchjson -out BENCH_2.json -cmd "go test -run='^$$' -bench=$(BENCH2_RE) -benchmem ./internal/core ./internal/resilience"
	$(GO) test -run='^$$' -bench=$(BENCH3_RE) -benchmem ./internal/core | \
		/tmp/benchjson -out BENCH_3.json -cmd "go test -run='^$$' -bench=$(BENCH3_RE) -benchmem ./internal/core"
