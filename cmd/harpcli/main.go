// Command harpcli trains, saves, loads and evaluates HARP models from the
// command line.
//
// Subcommands:
//
//	train -topo geant|abilene|anonnet [-k N] [-tms N] [-epochs N] [-out model.gob]
//	      [-checkpoint ck.harp] [-resume]
//	    Train on synthetic traffic over the chosen topology and report
//	    NormMLU on a held-out test set; optionally save the model.
//	    -checkpoint writes an atomic, CRC-checksummed training checkpoint
//	    after every epoch; -resume continues a killed run from it
//	    bit-identically.
//
//	eval -model model.gob -topo geant|abilene [-k N] [-tms N] [-fail u,v]
//	    Load a model and evaluate NormMLU, optionally under a link failure.
//
// train and eval also accept -cpuprofile/-memprofile to write pprof
// profiles of the run (see the Performance section of the README), plus
// telemetry flags:
//
//	-metrics-addr host:port
//	    Serve the observability admin endpoint while the command runs:
//	    Prometheus text on /metrics, expvar on /debug/vars, and pprof on
//	    /debug/pprof/. Training publishes loss/val-MLU gauges and guard
//	    counters; eval publishes per-stage forward-pass histograms.
//	-log-json (train only)
//	    Replace the human-readable per-epoch progress lines with one
//	    structured JSON record per epoch on stderr.
//
// -cpuprofile and /debug/pprof/profile both drive the single process-wide
// CPU profiler, so a live profile request will fail while -cpuprofile is
// active; use one or the other. Heap, goroutine and trace endpoints are
// unaffected.
//
//	info -model model.gob
//	    Print the model configuration and parameter count.
//
//	search -topo geant|abilene [-k N] [-tms N] [-epochs N] [-full]
//	    Run the Appendix-A.2 hyperparameter grid search and print the
//	    per-combination validation MLU leaderboard.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"harpte/internal/tensor"

	"harpte/internal/core"
	"harpte/internal/experiments"
	"harpte/internal/lp"
	"harpte/internal/obs"
	"harpte/internal/te"
	"harpte/internal/topology"
	"harpte/internal/traffic"
	"harpte/internal/tunnels"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "eval":
		cmdEval(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "search":
		cmdSearch(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: harpcli <train|eval|info|search> [flags]")
	os.Exit(2)
}

// buildTopologyOrFile loads a topology from -topofile when given, else by
// name.
func buildTopologyOrFile(name, file string, seed int64) *topology.Graph {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		g, err := topology.Parse(f)
		if err != nil {
			fatal(err)
		}
		return g
	}
	return buildTopology(name, seed)
}

func buildTopology(name string, seed int64) *topology.Graph {
	switch strings.ToLower(name) {
	case "abilene":
		return topology.Abilene()
	case "geant":
		return topology.Geant()
	case "anonnet":
		return topology.RandomConnected("AnonNet", 24, 3.5, []float64{40, 100, 400}, seed)
	case "uscarrier":
		return topology.UsCarrierScale(seed)
	case "kdl":
		return topology.KDLScale(seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", name)
		os.Exit(2)
		return nil
	}
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	topoName := fs.String("topo", "abilene", "topology: abilene, geant, anonnet, uscarrier, kdl")
	topoFile := fs.String("topofile", "", "load the topology from this file instead (see internal/topology.Parse)")
	tmFile := fs.String("tmfile", "", "load traffic matrices from this file instead of generating them")
	k := fs.Int("k", 4, "tunnels per flow")
	numTMs := fs.Int("tms", 40, "number of synthetic traffic matrices")
	epochs := fs.Int("epochs", 25, "training epochs")
	lr := fs.Float64("lr", 2e-3, "learning rate")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 1, "data-parallel training workers (>1 trades exact reproducibility for speed)")
	out := fs.String("out", "", "save trained model to this path")
	ckpt := fs.String("checkpoint", "", "write an atomic training checkpoint to this path after every epoch")
	resume := fs.Bool("resume", false, "resume from -checkpoint if it exists (continues bit-identically)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port while training")
	logJSON := fs.Bool("log-json", false, "emit one structured JSON record per epoch on stderr instead of progress lines")
	mustParse(fs, args)
	if *resume && *ckpt == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	defer startProfiles(*cpuProf, *memProf)()
	reg, stopAdmin := startAdmin(*metricsAddr)
	defer stopAdmin()

	g := buildTopologyOrFile(*topoName, *topoFile, *seed)
	set := tunnels.Compute(g, *k)
	p := te.NewProblem(g, set)
	fmt.Printf("topology %s: %d nodes, %d directed links, %d flows, %d tunnels\n",
		g.Name, g.NumNodes, g.NumEdges(), p.NumFlows(), set.NumTunnels())

	tms := loadOrGenerateTMs(*tmFile, g, set, *numTMs, *seed)
	var instances []*experiments.Instance
	for _, tm := range tms {
		instances = append(instances, &experiments.Instance{
			Problem: p, Demand: traffic.DemandVector(tm, set.Flows),
		})
	}
	trainIdx, valIdx, testIdx := experiments.SplitTrainValTest(len(instances))
	pick := func(idx []int) []*experiments.Instance {
		o := make([]*experiments.Instance, len(idx))
		for i, j := range idx {
			o[i] = instances[j]
		}
		return o
	}
	trainI, valI, testI := pick(trainIdx), pick(valIdx), pick(testIdx)

	m := core.New(core.DefaultConfig())
	fmt.Printf("HARP model: %d parameters\n", m.NumParams())
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.LR = *lr
	tc.Workers = *workers
	tc.Log = os.Stdout
	tc.CheckpointPath = *ckpt
	tc.CheckpointEvery = 1
	tc.Resume = *resume
	if reg != nil {
		m.EnableTelemetry(reg)
		tc.Metrics = reg
	}
	if *logJSON {
		tc.Log = nil
		tc.Logger = obs.NewLogger(os.Stderr, true)
	}
	// Surface flag mistakes (negative epochs, workers > batch, resume
	// without a checkpoint path) before any expensive sample building.
	if err := tc.Validate(); err != nil {
		fatal(err)
	}
	res, err := m.FitCheckpointed(experiments.HarpSamples(m, trainI), experiments.HarpSamples(m, valI), tc)
	if err != nil {
		fatal(err)
	}
	if res.ResumedAtEpoch > 0 {
		fmt.Printf("resumed from checkpoint at epoch %d\n", res.ResumedAtEpoch)
	}
	if res.SkippedBatches > 0 {
		fmt.Printf("health guard: skipped %d poisoned batches, %d snapshot restores\n",
			res.SkippedBatches, res.GuardRestores)
	}
	fmt.Printf("best validation MLU: %.4f after %d epochs\n", res.BestValMLU, res.Epochs)

	experiments.ComputeOptimal(testI)
	norm := experiments.EvalHarp(m, testI, experiments.HarpSamples(m, testI))
	d := experiments.NewDistribution(norm)
	fmt.Printf("test NormMLU: %s\n", d.CDFRow())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *out)
	}
}

func cmdEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	modelPath := fs.String("model", "", "path to a model saved by train")
	topoName := fs.String("topo", "abilene", "topology")
	k := fs.Int("k", 4, "tunnels per flow")
	numTMs := fs.Int("tms", 10, "number of test traffic matrices")
	seed := fs.Int64("seed", 99, "seed (use a different seed than training)")
	failLink := fs.String("fail", "", "fail the undirected link u,v before evaluating")
	report := fs.Bool("report", false, "print the operator what-if report for the first matrix")
	precision := fs.String("precision", "float64", "inference precision: float64 (training arithmetic) or float32 (half-width sparse inference engine)")
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port during the run")
	mustParse(fs, args)
	if *modelPath == "" {
		fatal(fmt.Errorf("eval requires -model"))
	}
	defer startProfiles(*cpuProf, *memProf)()
	reg, stopAdmin := startAdmin(*metricsAddr)
	defer stopAdmin()
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	m, err := core.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		m.EnableTelemetry(reg)
	}
	switch *precision {
	case "float64":
	case "float32":
		if err := m.EnableFloat32Inference(); err != nil {
			fatal(fmt.Errorf("cannot serve in float32: %w", err))
		}
		fmt.Println("inference on the float32 engine")
	default:
		fatal(fmt.Errorf("unknown -precision %q (want float64 or float32)", *precision))
	}

	g := buildTopology(*topoName, *seed)
	set := tunnels.Compute(g, *k)
	if *failLink != "" {
		parts := strings.Split(*failLink, ",")
		if len(parts) != 2 {
			fatal(fmt.Errorf("-fail wants u,v"))
		}
		u, err1 := strconv.Atoi(parts[0])
		v, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fatal(fmt.Errorf("-fail wants integer node ids"))
		}
		// The link id comes straight from user input: fail with a message,
		// not a panic, when it does not exist.
		g, err = g.WithFailedLinkErr(u, v)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("failed link %d<->%d\n", u, v)
	}
	p := te.NewProblem(g, set)
	ctx := m.Context(p)

	tms := experiments.SyntheticTMs(g, set, *numTMs, *seed)
	var norms []float64
	for _, tm := range tms {
		d := traffic.DemandVector(tm, set.Flows)
		opt := lp.Solve(p, d)
		mlu := p.MLU(m.Splits(ctx, d), d)
		norms = append(norms, te.NormMLU(mlu, opt.MLU))
	}
	fmt.Printf("NormMLU over %d matrices: %s\n", len(norms),
		experiments.NewDistribution(norms).CDFRow())

	if *report {
		d := traffic.DemandVector(tms[0], set.Flows)
		fmt.Println()
		if err := p.WriteReport(os.Stdout, m.Splits(ctx, d), d, 6); err != nil {
			fatal(err)
		}
	}
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	modelPath := fs.String("model", "", "path to a saved model")
	mustParse(fs, args)
	if *modelPath == "" {
		fatal(fmt.Errorf("info requires -model"))
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := core.Load(f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("config: %+v\n", m.Cfg)
	fmt.Printf("parameters: %d\n", m.NumParams())
}

// startProfiles begins CPU profiling (when cpu is non-empty) and returns a
// function that stops it and writes a heap profile (when mem is non-empty).
// Callers defer the result, so profiles are flushed on the normal return
// path; fatal() exits the process and loses in-flight profiles, same as any
// crash would.
func startProfiles(cpu, mem string) func() {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	return func() {
		if cpu != "" {
			pprof.StopCPUProfile()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}
	}
}

// startAdmin starts the observability admin endpoint on addr and returns
// the registry behind it (runtime gauges pre-registered) plus a shutdown
// function. An empty addr disables telemetry: the registry is nil and all
// instrumentation stays on its zero-overhead path.
func startAdmin(addr string) (*obs.Registry, func()) {
	if addr == "" {
		return nil, func() {}
	}
	reg := obs.NewRegistry()
	core.RegisterRuntimeGauges(reg)
	obs.RegisterBuildInfo(reg, obs.L("component", "harpcli"))
	admin, err := obs.ServeAdmin(addr, reg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (expvar and pprof under /debug/)\n", admin.Addr())
	return reg, func() { admin.Close() }
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harpcli:", err)
	os.Exit(1)
}

// loadOrGenerateTMs reads matrices from path when given, else synthesizes.
func loadOrGenerateTMs(path string, g *topology.Graph, set *tunnels.Set, n int, seed int64) []*tensor.Dense {
	if path == "" {
		return experiments.SyntheticTMs(g, set, n, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tms, err := traffic.ParseTMs(f)
	if err != nil {
		fatal(err)
	}
	for i, tm := range tms {
		if tm.Rows != g.NumNodes {
			fatal(fmt.Errorf("matrix %d is %dx%d but the topology has %d nodes", i, tm.Rows, tm.Cols, g.NumNodes))
		}
	}
	return tms
}

func cmdSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	topoName := fs.String("topo", "abilene", "topology")
	k := fs.Int("k", 4, "tunnels per flow")
	numTMs := fs.Int("tms", 32, "number of synthetic traffic matrices")
	epochs := fs.Int("epochs", 15, "training epochs per grid point")
	seed := fs.Int64("seed", 1, "seed")
	full := fs.Bool("full", false, "search the paper's full 144-point grid (slow)")
	out := fs.String("out", "", "save the winning model to this path")
	mustParse(fs, args)

	g := buildTopology(*topoName, *seed)
	set := tunnels.Compute(g, *k)
	p := te.NewProblem(g, set)
	tms := experiments.SyntheticTMs(g, set, *numTMs, *seed)
	var instances []*experiments.Instance
	for _, tm := range tms {
		instances = append(instances, &experiments.Instance{
			Problem: p, Demand: traffic.DemandVector(tm, set.Flows),
		})
	}
	trainIdx, valIdx, _ := experiments.SplitTrainValTest(len(instances))
	pick := func(idx []int) []*experiments.Instance {
		o := make([]*experiments.Instance, len(idx))
		for i, j := range idx {
			o[i] = instances[j]
		}
		return o
	}
	base := core.DefaultConfig()
	base.Seed = *seed
	scaffold := core.New(base)
	trainS := experiments.HarpSamples(scaffold, pick(trainIdx))
	valS := experiments.HarpSamples(scaffold, pick(valIdx))

	grid := core.SmallGrid()
	if *full {
		grid = core.DefaultGrid()
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.Seed = *seed
	if err := tc.Validate(); err != nil {
		fatal(err)
	}
	fmt.Printf("searching %s on %s (%d flows)...\n",
		gridLabel(*full), g.Name, p.NumFlows())
	best, results, err := core.GridSearch(grid, base, tc, trainS, valS)
	if err != nil {
		fatal(err)
	}
	fmt.Println("rank  val-MLU  gnn  settrans  rau  lr      batch  params")
	for i, r := range results {
		fmt.Printf("%4d  %.4f   %d    %d         %-3d  %.0e  %-5d  %d\n",
			i+1, r.ValMLU, r.Config.GNNLayers, r.Config.SetTransLayers,
			r.Config.RAUIterations, r.LR, r.BatchSize, r.ParamCount)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := best.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("winning model saved to %s\n", *out)
	}
}

func gridLabel(full bool) string {
	if full {
		return "the paper's 144-point grid"
	}
	return "the 8-point quick grid"
}
