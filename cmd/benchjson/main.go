// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the machine-readable benchmark ledger BENCH_1.json.
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_1.json
//
// The ledger has two keys: "baseline" (the numbers recorded before the
// allocation-free hot path landed — preserved verbatim from the existing
// file) and "current" (rewritten from stdin on every run). Comparing the
// two is the perf-regression check: see the Performance section of the
// README for how to read it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds b.ReportMetric custom units (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Ledger is the BENCH_1.json document.
type Ledger struct {
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Benchmark string   `json:"benchmark_cmd,omitempty"`
	Baseline  []Result `json:"baseline,omitempty"`
	Current   []Result `json:"current"`
}

// benchLine matches "BenchmarkName-8   123   456 ns/op   789 B/op   12 allocs/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("out", "BENCH_1.json", "ledger file to update")
	cmd := flag.String("cmd", "", "record this as the command that produced the input")
	flag.Parse()

	ledger := loadExisting(*out)
	if *cmd != "" {
		ledger.Benchmark = *cmd
	}
	ledger.Current = nil

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Echo so benchjson can sit at the end of a pipe without hiding output.
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			ledger.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			ledger.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			ledger.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				ledger.Current = append(ledger.Current, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(ledger.Current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if err := write(*out, ledger); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(ledger.Current), *out)
}

// parseLine decodes one benchmark result line. Measurements come in
// "<value> <unit>" pairs; ns/op, B/op and allocs/op get dedicated fields,
// anything else (b.ReportMetric) lands in Extra.
func parseLine(line string) (Result, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(m[2], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: m[1], Iterations: iters}
	fields := strings.Fields(m[3])
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = v
		}
	}
	return r, true
}

// loadExisting reads the prior ledger so the baseline survives reruns. A
// missing or unreadable file just starts a fresh ledger.
func loadExisting(path string) Ledger {
	var l Ledger
	data, err := os.ReadFile(path)
	if err != nil {
		return l
	}
	if err := json.Unmarshal(data, &l); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: ignoring unparseable %s: %v\n", path, err)
		return Ledger{}
	}
	return l
}

func write(path string, l Ledger) error {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
