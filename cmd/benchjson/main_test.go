package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkTrainStepAbilene-8   	      10	 124618117 ns/op	108195392 B/op	  165556 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkTrainStepAbilene-8" || r.Iterations != 10 {
		t.Fatalf("bad header: %+v", r)
	}
	if r.NsPerOp != 124618117 || r.BytesPerOp != 108195392 || r.AllocsPerOp != 165556 {
		t.Fatalf("bad measurements: %+v", r)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkFig04Transferability 	       1	9876543210 ns/op	         1.100 median-NormMLU")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Extra["median-NormMLU"] != 1.1 {
		t.Fatalf("custom metric lost: %+v", r)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  	harpte	12.3s",
		"BenchmarkBroken-8	notanumber	1 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed non-benchmark line %q", line)
		}
	}
}
