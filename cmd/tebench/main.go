// Command tebench regenerates any table or figure from the paper's
// evaluation. Each experiment id maps to a runner in internal/experiments;
// see DESIGN.md for the experiment index.
//
// Usage:
//
//	tebench [-scale small|full] [-seed N] [-epochs N] [-v] <experiment> [...]
//	tebench -list
//	tebench all
//
// Experiments: tab1 fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig15 fig16 fig17 fig18 (fig10 and fig17 are two views of the same
// Abilene run; "fig10" prints both), plus the §7 future-work extensions
// ext-shift and ext-objectives.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"harpte/internal/dataset"
	"harpte/internal/experiments"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "small", "experiment scale: small or full")
		seed      = flag.Int64("seed", 1, "experiment seed")
		epochs    = flag.Int("epochs", 0, "override training epochs (0 = preset)")
		verbose   = flag.Bool("v", false, "print progress while running")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		csvDir    = flag.String("csv", "", "also write raw distributions as <dir>/<id>.csv where supported")
	)
	flag.Parse()

	scale := experiments.Small
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}
	var progress experiments.Progress
	if *verbose {
		progress = experiments.Progress{W: os.Stderr}
	}

	runners := buildRunners(scale, *seed, *epochs, progress, *csvDir)
	if *list {
		var ids []string
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tebench [-scale small|full] <experiment>...; -list for ids")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for id := range runners {
			args = append(args, id)
		}
		sort.Strings(args)
	}
	for _, id := range args {
		run, ok := runners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		run(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func buildRunners(scale experiments.Scale, seed int64, epochs int, progress experiments.Progress, csvDir string) map[string]func(io.Writer) {
	dumpCSV := func(id string, r experiments.WriteCSV) {
		if csvDir == "" {
			return
		}
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tebench: csv:", err)
			return
		}
		f, err := os.Create(filepath.Join(csvDir, id+".csv"))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tebench: csv:", err)
			return
		}
		defer f.Close()
		if err := r.CSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "tebench: csv:", err)
		}
	}
	transfer := experiments.TransferConfig{Scale: scale, Seed: seed, Epochs: epochs, Progress: progress}
	cluster := experiments.ClusterConfig{Scale: scale, Seed: seed, Epochs: epochs, Progress: progress}
	schemes := experiments.SchemesConfig{Scale: scale, Seed: seed, Epochs: epochs, Progress: progress}
	failure := experiments.FailureConfig{SchemesConfig: schemes}

	genDataset := func() *dataset.Dataset {
		cfg := experiments.AnonNetConfig(scale)
		cfg.Seed = seed
		return dataset.Generate(cfg)
	}

	return map[string]func(io.Writer){
		"tab1": func(w io.Writer) { fmt.Fprint(w, experiments.Tab1(seed).Table) },
		"fig1": func(w io.Writer) {
			r := experiments.Fig1(genDataset(), 16)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig1", r)
		},
		"fig3": func(w io.Writer) { fmt.Fprint(w, experiments.Fig3(genDataset()).Table) },
		"fig4": func(w io.Writer) {
			r := experiments.Fig4(transfer)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig4", r)
		},
		"fig5": func(w io.Writer) { fmt.Fprint(w, experiments.Fig5(cluster).Table) },
		"fig6": func(w io.Writer) { fmt.Fprint(w, experiments.Fig6(cluster).Table) },
		"fig7": func(w io.Writer) {
			r := experiments.Fig7(schemes)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig7", r)
		},
		"fig8": func(w io.Writer) {
			r := experiments.Fig8(schemes)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig8", r)
		},
		"fig9": func(w io.Writer) {
			r := experiments.Fig9(failure)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig9", r)
		},
		"fig10": func(w io.Writer) {
			res := experiments.Fig10And17(failure)
			fmt.Fprint(w, res.Table)
			printBoxes(w, res)
			dumpCSV("fig10", res)
		},
		"fig11": func(w io.Writer) {
			fmt.Fprint(w, experiments.Fig11(experiments.Fig11Config{Scale: scale, Seed: seed, Progress: progress}).Table)
		},
		"fig12": func(w io.Writer) {
			for _, r := range experiments.Fig12(experiments.Fig12Config{Scale: scale, Seed: seed, Epochs: epochs, Progress: progress}) {
				fmt.Fprint(w, r.Table)
				dumpCSV("fig12-"+r.Predictor, r)
			}
		},
		"fig15": func(w io.Writer) { fmt.Fprint(w, experiments.Fig15(genDataset()).Table) },
		"fig16": func(w io.Writer) {
			r := experiments.Fig16(transfer)
			fmt.Fprint(w, r.Table)
			dumpCSV("fig16", r)
		},
		"fig17": func(w io.Writer) {
			res := experiments.Fig10And17(failure)
			printBoxes(w, res)
		},
		"fig18": func(w io.Writer) {
			r := experiments.Fig18(experiments.Fig18Config{Scale: scale, Seed: seed, Epochs: epochs, Progress: progress})
			fmt.Fprint(w, r.Table)
			dumpCSV("fig18", r)
		},
		"ext-shift": func(w io.Writer) {
			fmt.Fprint(w, experiments.ExtDemandShift(schemes).Table)
		},
		"ext-objectives": func(w io.Writer) {
			fmt.Fprint(w, experiments.ExtObjectives(schemes).Table)
		},
	}
}

// printBoxes renders the per-failure boxplot rows of Figures 9/17.
func printBoxes(w io.Writer, res *experiments.FailureResult) {
	t := &experiments.Table{
		Title:   fmt.Sprintf("%s per-failure boxplots (median / p90 / max)", res.Topology),
		Columns: []string{"failure", "HARP", "DOTE", "TEAL"},
	}
	for i := range res.Boxes["HARP"] {
		row := []string{res.Boxes["HARP"][i].Label}
		for _, s := range []string{"HARP", "DOTE", "TEAL"} {
			b := res.Boxes[s][i]
			row = append(row, fmt.Sprintf("%.2f/%.2f/%.2f", b.Median, b.P90, b.Max))
		}
		t.AddRow(row...)
	}
	fmt.Fprint(w, t)
}
