// Command tereplay simulates HARP operating as a live TE controller: it
// trains on the first clusters of a synthetic AnonNet-like series, then
// replays the remaining snapshots in order — recomputing split ratios per
// snapshot exactly as the controller would at each interval — and reports
// the NormMLU timeline, flagging topology events and failures as they
// stream past.
//
// The replay loop serves each snapshot through the guarded inference path
// (internal/resilience): inputs are validated, panics become errors, every
// output is vetted for NaN and row normalization, a per-request deadline is
// enforced, and requests degrade full-RAU → reduced-RAU → ECMP. The tier
// that served each snapshot is shown in the timeline and totaled at the
// end.
//
// Usage:
//
//	tereplay [-nodes N] [-snapshots N] [-seed N] [-epochs N] [-every N]
//	         [-deadline D] [-replicas N] [-hedge-quantile Q]
//	         [-retry-budget R] [-metrics-addr host:port]
//
// With -replicas N > 1 the replay serves through internal/fleet instead
// of a single server: N replicas of the trained model behind the
// health-checked dispatcher, with hedged requests after the adaptive
// -hedge-quantile latency delay and failover retries bounded by the
// -retry-budget token bucket. The fleet summary line at the end reports
// hedges, retries, ejections, and local ECMP fallbacks.
//
// With -metrics-addr the replay serves the observability admin endpoint
// while it runs: per-tier request counters and latency histograms, forward
// -pass stage timings, and pool gauges on /metrics, plus expvar and pprof
// under /debug/ (and the harp_fleet_* series when -replicas > 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"harpte/internal/core"
	"harpte/internal/dataset"
	"harpte/internal/experiments"
	"harpte/internal/fleet"
	"harpte/internal/lp"
	"harpte/internal/obs"
	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/traffic"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 14, "initial node count")
		snapshots = flag.Int("snapshots", 300, "snapshot count")
		seed      = flag.Int64("seed", 1, "seed")
		epochs    = flag.Int("epochs", 30, "training epochs")
		every     = flag.Int("every", 4, "replay every N-th snapshot")
		deadline  = flag.Duration("deadline", 5*time.Second, "per-request wall-clock budget before degrading to ECMP (0 disables)")
		maxConc   = flag.Int("max-concurrent", 0, "admission gate: concurrent serving slots (0 disables admission control)")
		queueLen  = flag.Int("max-queue", 0, "admission gate: queued requests beyond the gate before shedding")
		brkN      = flag.Int("breaker-threshold", 0, "consecutive tier failures before its circuit opens (0 disables breakers)")
		brkCool   = flag.Duration("breaker-cooloff", 5*time.Second, "how long a tripped tier stays open before a half-open probe")
		replicas  = flag.Int("replicas", 1, "serve through a fleet of N model replicas (>1 enables the dispatcher)")
		hedgeQ    = flag.Float64("hedge-quantile", 0.95, "fleet: latency quantile after which a hedge fires on a second replica (0 disables hedging)")
		retryBud  = flag.Float64("retry-budget", 0.1, "fleet: retry tokens earned per request; hedges and retries each spend one (negative disables)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port during the replay")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		core.RegisterRuntimeGauges(reg)
		admin, err := obs.ServeAdmin(*metrics, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tereplay:", err)
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", admin.Addr())
	}

	cfg := experiments.AnonNetConfig(experiments.Small)
	cfg.Nodes = *nodes
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %d snapshots, %d clusters\n", len(ds.Snapshots), len(ds.Clusters))

	// Train on the earliest substantial clusters, as the fig4 protocol does.
	trainClusters := map[int]bool{}
	var trainInst, valInst []*experiments.Instance
	picked := 0
	for ci := range ds.Clusters {
		if len(ds.Clusters[ci].Snapshots) < 8 {
			continue
		}
		inst := experiments.ClusterInstances(ds, ci, 1)
		if picked < 3 {
			trainInst = append(trainInst, inst...)
			trainClusters[ci] = true
		} else if picked < 5 {
			valInst = append(valInst, inst...)
			trainClusters[ci] = true
		} else {
			break
		}
		picked++
	}
	model := core.New(core.DefaultConfig())
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	if reg != nil {
		model.EnableTelemetry(reg)
		tc.Metrics = reg
	}
	fmt.Printf("training on %d snapshots (%d validation)...\n", len(trainInst), len(valInst))
	res := model.Fit(experiments.HarpSamples(model, trainInst),
		experiments.HarpSamples(model, valInst), tc)
	fmt.Printf("trained: best val MLU %.4f\n\n", res.BestValMLU)

	if *replicas < 1 {
		*replicas = 1
	}
	// Replicas share the trained model (inference is concurrency-safe and
	// the weights are immutable behind each server's atomic swap); each
	// replica still gets its own guards, breakers, and reload generation.
	servers := make([]*resilience.Server, *replicas)
	backends := make([]fleet.Replica, *replicas)
	for i := range servers {
		servers[i] = resilience.NewServer(model, resilience.Options{
			Deadline:         *deadline,
			MaxConcurrent:    *maxConc,
			MaxQueueDepth:    *queueLen,
			BreakerThreshold: *brkN,
			BreakerCooloff:   *brkCool,
		})
		if reg != nil {
			// Same metric names resolve to shared counters, so the
			// registry shows the fleet-wide aggregate.
			servers[i].EnableTelemetry(reg)
		}
		backends[i] = fleet.Local{S: servers[i]}
	}
	srv := servers[0]
	var fl *fleet.Fleet
	if *replicas > 1 {
		fl = fleet.New(backends, fleet.Options{
			Deadline:      *deadline,
			HedgeQuantile: *hedgeQ,
			RetryBudget:   *retryBud,
		})
		defer fl.Close()
		if reg != nil {
			fl.EnableTelemetry(reg)
		}
	}

	fmt.Println("  t  cluster  event            tier         HARP-MLU  optimal   NormMLU")
	var norms []float64
	lastCluster := -1
	for si := 0; si < len(ds.Snapshots); si += *every {
		snap := ds.Snapshots[si]
		if trainClusters[snap.Cluster] {
			continue // skip the training/validation window
		}
		c := ds.Clusters[snap.Cluster]
		p := te.NewProblem(snap.Graph, c.Tunnels)
		d := traffic.DemandVector(snap.TM, c.Tunnels.Flows)
		var dec resilience.Decision
		if fl != nil {
			dec = fl.Serve(p, d).Decision
		} else {
			dec = srv.Serve(p, d)
		}
		if dec.Tier == resilience.TierRejected {
			fmt.Fprintf(os.Stderr, "tereplay: snapshot %d rejected: %v\n", si, dec.Err)
			continue
		}
		mlu := p.MLU(dec.Splits, d)
		opt := lp.Solve(p, d).MLU
		norm := te.NormMLU(mlu, opt)
		norms = append(norms, norm)

		var events []string
		if snap.Cluster != lastCluster {
			events = append(events, "new-cluster/tunnels")
			lastCluster = snap.Cluster
		}
		for id := range snap.Graph.Edges {
			if !snap.Graph.IsActive(id) {
				events = append(events, "link-down")
				break
			}
		}
		marker := ""
		if norm > 1.2 {
			marker = "  <-- degraded"
		}
		fmt.Printf("%4d  %6d  %-16s %-12s %8.4f  %8.4f  %7.3f%s\n",
			si, snap.Cluster, strings.Join(events, ","), dec.Tier, mlu, opt, norm, marker)
	}
	if len(norms) == 0 {
		fmt.Fprintln(os.Stderr, "tereplay: no test snapshots (dataset too small?)")
		os.Exit(1)
	}
	d := experiments.NewDistribution(norms)
	fmt.Printf("\nreplayed %d snapshots: %s\n", len(norms), d.CDFRow())
	counts := map[resilience.Tier]int64{}
	for _, s := range servers {
		for tier, n := range s.TierCounts() {
			counts[tier] += n
		}
	}
	fmt.Printf("serving tiers: full=%d reduced-rau=%d ecmp=%d rejected=%d shed=%d\n",
		counts[resilience.TierFull], counts[resilience.TierReducedRAU],
		counts[resilience.TierECMP], counts[resilience.TierRejected],
		counts[resilience.TierShed])
	st := srv.Stats()
	fmt.Printf("overload/churn: shed=%d (queue-full=%d deadline=%d draining=%d) breaker-trips=%d breaker-open=%d short-circuits=%d reloads=%d (failed=%d) generation=%d\n",
		st.Shed, st.ShedQueueFull, st.ShedQueueDeadline, st.ShedDraining,
		st.BreakerTrips, st.BreakerOpenTiers, st.BreakerShortCircuits,
		st.Reloads, st.ReloadFailures, st.Generation)
	if fl != nil {
		fst := fl.Stats()
		fmt.Printf("fleet: replicas=%d (healthy=%d degraded=%d quarantined=%d) served=%d ecmp-fallback=%d hedges=%d (wins=%d) retries=%d (denied=%d) ejections=%d readmits=%d\n",
			fst.Replicas, fst.Healthy, fst.Degraded, fst.Quarantined,
			fst.Served, fst.LocalFallbacks, fst.Hedges, fst.HedgeWins,
			fst.Retries, fst.RetryBudgetDenied, fst.Ejections, fst.Readmissions)
	}
}
