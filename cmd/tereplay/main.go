// Command tereplay simulates HARP operating as a live TE controller: it
// trains on the first clusters of a synthetic AnonNet-like series, then
// replays the remaining snapshots in order — recomputing split ratios per
// snapshot exactly as the controller would at each interval — and reports
// the NormMLU timeline, flagging topology events and failures as they
// stream past.
//
// Usage:
//
//	tereplay [-nodes N] [-snapshots N] [-seed N] [-epochs N] [-every N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harpte/internal/core"
	"harpte/internal/dataset"
	"harpte/internal/experiments"
	"harpte/internal/lp"
	"harpte/internal/te"
	"harpte/internal/traffic"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 14, "initial node count")
		snapshots = flag.Int("snapshots", 300, "snapshot count")
		seed      = flag.Int64("seed", 1, "seed")
		epochs    = flag.Int("epochs", 30, "training epochs")
		every     = flag.Int("every", 4, "replay every N-th snapshot")
	)
	flag.Parse()

	cfg := experiments.AnonNetConfig(experiments.Small)
	cfg.Nodes = *nodes
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %d snapshots, %d clusters\n", len(ds.Snapshots), len(ds.Clusters))

	// Train on the earliest substantial clusters, as the fig4 protocol does.
	trainClusters := map[int]bool{}
	var trainInst, valInst []*experiments.Instance
	picked := 0
	for ci := range ds.Clusters {
		if len(ds.Clusters[ci].Snapshots) < 8 {
			continue
		}
		inst := experiments.ClusterInstances(ds, ci, 1)
		if picked < 3 {
			trainInst = append(trainInst, inst...)
			trainClusters[ci] = true
		} else if picked < 5 {
			valInst = append(valInst, inst...)
			trainClusters[ci] = true
		} else {
			break
		}
		picked++
	}
	model := core.New(core.DefaultConfig())
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	fmt.Printf("training on %d snapshots (%d validation)...\n", len(trainInst), len(valInst))
	res := model.Fit(experiments.HarpSamples(model, trainInst),
		experiments.HarpSamples(model, valInst), tc)
	fmt.Printf("trained: best val MLU %.4f\n\n", res.BestValMLU)

	fmt.Println("  t  cluster  event            HARP-MLU  optimal   NormMLU")
	var norms []float64
	lastCluster := -1
	for si := 0; si < len(ds.Snapshots); si += *every {
		snap := ds.Snapshots[si]
		if trainClusters[snap.Cluster] {
			continue // skip the training/validation window
		}
		c := ds.Clusters[snap.Cluster]
		p := te.NewProblem(snap.Graph, c.Tunnels)
		d := traffic.DemandVector(snap.TM, c.Tunnels.Flows)
		splits := model.Splits(model.Context(p), d)
		mlu := p.MLU(splits, d)
		opt := lp.Solve(p, d).MLU
		norm := te.NormMLU(mlu, opt)
		norms = append(norms, norm)

		var events []string
		if snap.Cluster != lastCluster {
			events = append(events, "new-cluster/tunnels")
			lastCluster = snap.Cluster
		}
		for id := range snap.Graph.Edges {
			if !snap.Graph.IsActive(id) {
				events = append(events, "link-down")
				break
			}
		}
		marker := ""
		if norm > 1.2 {
			marker = "  <-- degraded"
		}
		fmt.Printf("%4d  %6d  %-16s %8.4f  %8.4f  %7.3f%s\n",
			si, snap.Cluster, strings.Join(events, ","), mlu, opt, norm, marker)
	}
	if len(norms) == 0 {
		fmt.Fprintln(os.Stderr, "tereplay: no test snapshots (dataset too small?)")
		os.Exit(1)
	}
	d := experiments.NewDistribution(norms)
	fmt.Printf("\nreplayed %d snapshots: %s\n", len(norms), d.CDFRow())
}
