// Command tereplay simulates HARP operating as a live TE controller: it
// trains on the first clusters of a synthetic AnonNet-like series, then
// replays the remaining snapshots in order — recomputing split ratios per
// snapshot exactly as the controller would at each interval — and reports
// the NormMLU timeline, flagging topology events and failures as they
// stream past.
//
// The replay loop serves each snapshot through the guarded inference path
// (internal/resilience): inputs are validated, panics become errors, every
// output is vetted for NaN and row normalization, a per-request deadline is
// enforced, and requests degrade full-RAU → reduced-RAU → ECMP. The tier
// that served each snapshot is shown in the timeline and totaled at the
// end.
//
// Usage:
//
//	tereplay [-nodes N] [-snapshots N] [-seed N] [-epochs N] [-every N]
//	         [-deadline D] [-replicas N] [-hedge-quantile Q]
//	         [-retry-budget R] [-metrics-addr host:port]
//	         [-batch-max N] [-batch-linger D] [-cache-entries N] [-shard]
//	         [-load-duration D] [-open-loop-rate R] [-load-workers N]
//	         [-trace-dump FILE] [-trace-sample N] [-quality-every N]
//	         [-scenario FILE|auto]
//
// With -replicas N > 1 the replay serves through internal/fleet instead
// of a single server: N replicas of the trained model behind the
// health-checked dispatcher, with hedged requests after the adaptive
// -hedge-quantile latency delay and failover retries bounded by the
// -retry-budget token bucket. -shard routes by topology cluster
// (rendezvous hashing over the topology fingerprint) so each replica's
// caches stay hot. The fleet summary line at the end reports hedges,
// retries, ejections, and local ECMP fallbacks.
//
// -batch-max / -batch-linger enable replica-side micro-batching
// (concurrent same-topology requests coalesce into one batched inference)
// and -cache-entries enables the split-ratio cache; the summary then
// reports realized batch occupancy and cache hit rates. The replay itself
// is sequential — batching and caching pay off in the load phase:
// -load-duration runs a post-replay load-generation phase over the test
// snapshots, closed-loop with -load-workers by default or open-loop at
// -open-loop-rate req/s, reporting throughput, shed rate, and
// p50/p99/p999 latency.
//
// With -metrics-addr the replay serves the observability admin endpoint
// while it runs: per-tier request counters and latency histograms, forward
// -pass stage timings, pool gauges, build info, and SLO burn-rate gauges
// on /metrics, plus expvar, pprof, and the flight-recorder trace dump
// under /debug/ (and the harp_fleet_* series when -replicas > 1).
//
// -trace-dump (or -metrics-addr) arms the per-request flight recorder:
// every request runs under a trace whose spans cover fleet dispatch,
// queue waits, cache hits/misses, batch membership, and per-stage forward
// timings. Tail-based sampling keeps errors, sheds, hedge wins, and
// p99-slow requests while retaining only 1-in-(-trace-sample) of the
// boring ones; the retained ring is written as JSON at exit (and served
// live on /debug/traces). -quality-every N re-solves one in N served
// requests with the exact simplex oracle in the background and reports
// the achieved/optimal MLU ratio — the live answer to "how far from
// optimal is what we are serving".
//
// -scenario runs a correlated-disaster drill after the replay (and load
// phase, if any): a seed-replayable script of SRLG fiber cuts, flash
// crowds, sustained demand shifts, adversarial traffic matrices
// (gradient-ascended against the trained weights), and maintenance waves
// that quarantine fleet replicas (ignored with -replicas 1). Pass a
// scenario JSON file, or "auto" for the canned everything-at-once script.
// The drill arms the out-of-distribution serving guard: its envelope is
// trained on the scenario's own benign traffic immediately before the
// drill, so suspect/hostile demotions in the summary line are
// script-induced, and the replay and load phases run unguarded. The
// summary reports quiet vs disaster NormMLU (MLU degradation), shed
// rate, and the guard's verdict counts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"harpte/internal/chaos/scenario"
	"harpte/internal/core"
	"harpte/internal/dataset"
	"harpte/internal/experiments"
	"harpte/internal/fleet"
	"harpte/internal/lp"
	"harpte/internal/obs"
	"harpte/internal/obs/reqtrace"
	"harpte/internal/resilience"
	"harpte/internal/te"
	"harpte/internal/tensor"
	"harpte/internal/traffic"
	"harpte/internal/verify"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 14, "initial node count")
		snapshots = flag.Int("snapshots", 300, "snapshot count")
		seed      = flag.Int64("seed", 1, "seed")
		epochs    = flag.Int("epochs", 30, "training epochs")
		every     = flag.Int("every", 4, "replay every N-th snapshot")
		deadline  = flag.Duration("deadline", 5*time.Second, "per-request wall-clock budget before degrading to ECMP (0 disables)")
		maxConc   = flag.Int("max-concurrent", 0, "admission gate: concurrent serving slots (0 disables admission control)")
		queueLen  = flag.Int("max-queue", 0, "admission gate: queued requests beyond the gate before shedding")
		brkN      = flag.Int("breaker-threshold", 0, "consecutive tier failures before its circuit opens (0 disables breakers)")
		brkCool   = flag.Duration("breaker-cooloff", 5*time.Second, "how long a tripped tier stays open before a half-open probe")
		replicas  = flag.Int("replicas", 1, "serve through a fleet of N model replicas (>1 enables the dispatcher)")
		hedgeQ    = flag.Float64("hedge-quantile", 0.95, "fleet: latency quantile after which a hedge fires on a second replica (0 disables hedging)")
		retryBud  = flag.Float64("retry-budget", 0.1, "fleet: retry tokens earned per request; hedges and retries each spend one (negative disables)")
		metrics   = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this host:port during the replay")

		batchMax    = flag.Int("batch-max", 0, "micro-batch: max same-topology requests coalesced into one batched inference (<=1 disables batching)")
		batchLinger = flag.Duration("batch-linger", 2*time.Millisecond, "micro-batch: max wait for an unfilled batch before it dispatches anyway")
		cacheEnt    = flag.Int("cache-entries", 0, "split-ratio cache capacity per replica (0 disables the cache)")
		shard       = flag.Bool("shard", false, "fleet: route by topology cluster (rendezvous sharding) instead of round-robin")

		loadDur     = flag.Duration("load-duration", 0, "run a post-replay load-generation phase for this long (0 skips it)")
		openRate    = flag.Float64("open-loop-rate", 0, "load phase: open-loop arrival rate in req/s (0 = closed loop with -load-workers)")
		loadWorkers = flag.Int("load-workers", 8, "load phase: concurrent workers in closed-loop mode")

		traceDump    = flag.String("trace-dump", "", "write the flight-recorder trace dump to this file at exit (\"-\" for stdout)")
		traceSample  = flag.Int("trace-sample", 64, "flight recorder: probabilistically retain 1-in-N boring traces (errors, sheds, hedge wins and p99-slow requests are always kept)")
		qualityEvery = flag.Int("quality-every", 0, "re-solve 1-in-N served requests with the simplex oracle and score MLU vs optimal (0 disables)")

		precision = flag.String("precision", "float64", "serving precision: float64 (training arithmetic) or float32 (half-width sparse inference engine)")

		scenarioSpec = flag.String("scenario", "", "run a correlated-disaster drill after the replay: a scenario JSON file, or \"auto\" for the canned SRLG-cut + flash-crowd + adversarial + maintenance script")
	)
	flag.Parse()

	// The flight recorder runs whenever someone can see its output: a
	// -trace-dump file at exit, or /debug/traces under -metrics-addr.
	var rec *reqtrace.Recorder
	if *traceDump != "" || *metrics != "" {
		rec = reqtrace.NewRecorder(reqtrace.Options{SampleEvery: *traceSample})
	}
	var reg *obs.Registry
	var slos *resilience.SLOSet
	if *metrics != "" {
		reg = obs.NewRegistry()
		core.RegisterRuntimeGauges(reg)
		obs.RegisterBuildInfo(reg, obs.L("component", "tereplay"))
		// One SLO set shared by all replicas: burn-rate gauges are
		// last-writer-wins per label set, so per-server sets would shadow
		// each other on a shared registry.
		slos = resilience.NewSLOSet(resilience.SLOConfig{})
		slos.Register(reg)
		admin, err := obs.ServeAdminOpts(*metrics, obs.AdminOptions{Registry: reg, Traces: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "tereplay:", err)
			os.Exit(1)
		}
		defer admin.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", admin.Addr())
	}
	var qm *verify.QualityMonitor
	if *qualityEvery > 0 {
		qm = verify.NewQualityMonitor(verify.QualityOptions{
			SampleEvery: *qualityEvery,
			OnSample:    func(_ float64, good bool) { slos.RecordQuality(good) },
		})
		defer qm.Close()
		qm.EnableTelemetry(reg)
	}

	cfg := experiments.AnonNetConfig(experiments.Small)
	cfg.Nodes = *nodes
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed
	ds := dataset.Generate(cfg)
	fmt.Printf("dataset: %d snapshots, %d clusters\n", len(ds.Snapshots), len(ds.Clusters))

	// Train on the earliest substantial clusters, as the fig4 protocol does.
	trainClusters := map[int]bool{}
	var trainInst, valInst []*experiments.Instance
	picked := 0
	for ci := range ds.Clusters {
		if len(ds.Clusters[ci].Snapshots) < 8 {
			continue
		}
		inst := experiments.ClusterInstances(ds, ci, 1)
		if picked < 3 {
			trainInst = append(trainInst, inst...)
			trainClusters[ci] = true
		} else if picked < 5 {
			valInst = append(valInst, inst...)
			trainClusters[ci] = true
		} else {
			break
		}
		picked++
	}
	model := core.New(core.DefaultConfig())
	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	if reg != nil {
		model.EnableTelemetry(reg)
		tc.Metrics = reg
	}
	fmt.Printf("training on %d snapshots (%d validation)...\n", len(trainInst), len(valInst))
	res := model.Fit(experiments.HarpSamples(model, trainInst),
		experiments.HarpSamples(model, valInst), tc)
	fmt.Printf("trained: best val MLU %.4f\n\n", res.BestValMLU)

	switch *precision {
	case "float64":
	case "float32":
		// Strict weight narrowing: an unrepresentable weight means the
		// trained model cannot serve half-width, so fail up front rather
		// than at the first request.
		if err := model.EnableFloat32Inference(); err != nil {
			fmt.Fprintln(os.Stderr, "cannot serve in float32:", err)
			os.Exit(1)
		}
		fmt.Println("serving on the float32 inference engine")
	default:
		fmt.Fprintf(os.Stderr, "unknown -precision %q (want float64 or float32)\n", *precision)
		os.Exit(1)
	}

	if *replicas < 1 {
		*replicas = 1
	}
	// The OOD guard is shared by every replica; its profile envelope is
	// installed only when the -scenario drill starts, so the replay and
	// load phases serve unguarded (an empty guard fails open).
	var guard *resilience.OODGuard
	if *scenarioSpec != "" {
		guard = resilience.NewOODGuard()
	}
	// Replicas share the trained model (inference is concurrency-safe and
	// the weights are immutable behind each server's atomic swap); each
	// replica still gets its own guards, breakers, and reload generation.
	servers := make([]*resilience.Server, *replicas)
	backends := make([]fleet.Replica, *replicas)
	for i := range servers {
		servers[i] = resilience.NewServer(model, resilience.Options{
			Deadline:         *deadline,
			MaxConcurrent:    *maxConc,
			MaxQueueDepth:    *queueLen,
			BreakerThreshold: *brkN,
			BreakerCooloff:   *brkCool,
			BatchMaxSize:     *batchMax,
			BatchMaxLinger:   *batchLinger,
			CacheEntries:     *cacheEnt,
			SLO:              slos,
			Quality:          qm,
			OOD:              guard,
		})
		if reg != nil {
			// Same metric names resolve to shared counters, so the
			// registry shows the fleet-wide aggregate.
			servers[i].EnableTelemetry(reg)
		}
		backends[i] = fleet.Local{S: servers[i]}
	}
	// Scenario maintenance waves quarantine replicas through these shims;
	// they are transparent pass-throughs until a wave marks one down.
	var maintShims []*maintShim
	if *scenarioSpec != "" && *replicas > 1 {
		maintShims = make([]*maintShim, len(backends))
		for i := range backends {
			maintShims[i] = &maintShim{inner: backends[i]}
			backends[i] = maintShims[i]
		}
	}
	srv := servers[0]
	var fl *fleet.Fleet
	if *replicas > 1 {
		fl = fleet.New(backends, fleet.Options{
			Deadline:        *deadline,
			HedgeQuantile:   *hedgeQ,
			RetryBudget:     *retryBud,
			ShardByTopology: *shard,
		})
		defer fl.Close()
		if reg != nil {
			fl.EnableTelemetry(reg)
		}
	}

	serveOne := func(p *te.Problem, d *tensor.Dense) resilience.Decision {
		ctx := context.Background()
		var root *reqtrace.Span
		if rec != nil {
			ctx, root = rec.StartTrace(ctx, "request")
		}
		var dec resilience.Decision
		if fl != nil {
			dec = fl.ServeCtx(ctx, p, d).Decision
		} else {
			dec = srv.ServeCtx(ctx, p, d)
		}
		root.End()
		return dec
	}

	fmt.Println("  t  cluster  event            tier         HARP-MLU  optimal   NormMLU")
	var norms []float64
	tierLat := map[resilience.Tier][]time.Duration{}
	var pool []loadRequest // test-snapshot requests reused by the load phase
	lastCluster := -1
	for si := 0; si < len(ds.Snapshots); si += *every {
		snap := ds.Snapshots[si]
		if trainClusters[snap.Cluster] {
			continue // skip the training/validation window
		}
		c := ds.Clusters[snap.Cluster]
		p := te.NewProblem(snap.Graph, c.Tunnels)
		d := traffic.DemandVector(snap.TM, c.Tunnels.Flows)
		if len(pool) < 64 {
			pool = append(pool, loadRequest{p: p, d: d})
		}
		t0 := time.Now()
		dec := serveOne(p, d)
		tierLat[dec.Tier] = append(tierLat[dec.Tier], time.Since(t0))
		if dec.Tier == resilience.TierRejected {
			fmt.Fprintf(os.Stderr, "tereplay: snapshot %d rejected: %v\n", si, dec.Err)
			continue
		}
		mlu := p.MLU(dec.Splits, d)
		opt := lp.Solve(p, d).MLU
		norm := te.NormMLU(mlu, opt)
		norms = append(norms, norm)

		var events []string
		if snap.Cluster != lastCluster {
			events = append(events, "new-cluster/tunnels")
			lastCluster = snap.Cluster
		}
		for id := range snap.Graph.Edges {
			if !snap.Graph.IsActive(id) {
				events = append(events, "link-down")
				break
			}
		}
		marker := ""
		if norm > 1.2 {
			marker = "  <-- degraded"
		}
		fmt.Printf("%4d  %6d  %-16s %-12s %8.4f  %8.4f  %7.3f%s\n",
			si, snap.Cluster, strings.Join(events, ","), dec.Tier, mlu, opt, norm, marker)
	}
	if len(norms) == 0 {
		fmt.Fprintln(os.Stderr, "tereplay: no test snapshots (dataset too small?)")
		os.Exit(1)
	}
	d := experiments.NewDistribution(norms)
	fmt.Printf("\nreplayed %d snapshots: %s\n", len(norms), d.CDFRow())
	counts := map[resilience.Tier]int64{}
	for _, s := range servers {
		for tier, n := range s.TierCounts() {
			counts[tier] += n
		}
	}
	fmt.Printf("serving tiers: cached=%d full=%d reduced-rau=%d ecmp=%d rejected=%d shed=%d\n",
		counts[resilience.TierCached], counts[resilience.TierFull],
		counts[resilience.TierReducedRAU], counts[resilience.TierECMP],
		counts[resilience.TierRejected], counts[resilience.TierShed])
	for _, tier := range []resilience.Tier{resilience.TierCached, resilience.TierFull,
		resilience.TierReducedRAU, resilience.TierECMP} {
		if lats := tierLat[tier]; len(lats) > 0 {
			fmt.Printf("tier latency %-12s %s (n=%d)\n", tier.String()+":", percentileRow(lats), len(lats))
		}
	}
	st := srv.Stats()
	fmt.Printf("overload/churn: shed=%d (queue-full=%d deadline=%d draining=%d) breaker-trips=%d breaker-open=%d short-circuits=%d reloads=%d (failed=%d) generation=%d\n",
		st.Shed, st.ShedQueueFull, st.ShedQueueDeadline, st.ShedDraining,
		st.BreakerTrips, st.BreakerOpenTiers, st.BreakerShortCircuits,
		st.Reloads, st.ReloadFailures, st.Generation)
	if fl != nil {
		fst := fl.Stats()
		fmt.Printf("fleet: replicas=%d (healthy=%d degraded=%d quarantined=%d) served=%d ecmp-fallback=%d hedges=%d (wins=%d) retries=%d (denied=%d) ejections=%d readmits=%d\n",
			fst.Replicas, fst.Healthy, fst.Degraded, fst.Quarantined,
			fst.Served, fst.LocalFallbacks, fst.Hedges, fst.HedgeWins,
			fst.Retries, fst.RetryBudgetDenied, fst.Ejections, fst.Readmissions)
	}
	printServingStats(servers, *cacheEnt, *batchMax)

	if *loadDur > 0 && len(pool) > 0 {
		runLoadPhase(serveOne, pool, *loadDur, *openRate, *loadWorkers)
		printServingStats(servers, *cacheEnt, *batchMax)
	}

	if *scenarioSpec != "" {
		err := runScenarioDrill(*scenarioSpec, pool[0].p, model, guard, serveOne, fl, maintShims, *replicas, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tereplay: scenario:", err)
			os.Exit(1)
		}
	}

	if qm != nil {
		qm.Drain()
		qst := qm.Stats()
		fmt.Printf("quality: offered=%d sampled=%d dropped=%d worst-ratio=%.4f\n",
			qst.Offered, qst.Sampled, qst.Dropped, qst.WorstRatio)
	}
	for _, s := range slos.Snapshot() {
		fmt.Printf("slo %-13s burn 5m=%.2f 1h=%.2f\n", s.Name+":", s.Burn5m, s.Burn1h)
	}
	if *traceDump != "" {
		w := os.Stdout
		if *traceDump != "-" {
			fh, err := os.Create(*traceDump)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tereplay:", err)
				os.Exit(1)
			}
			defer fh.Close()
			w = fh
		}
		if err := rec.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "tereplay: trace dump:", err)
			os.Exit(1)
		}
		rst := rec.RecorderStats()
		fmt.Fprintf(os.Stderr, "traces: retained=%d dropped=%d\n", rst.Retained, rst.Dropped)
	}
}

// loadRequest is one (problem, demand) pair replayed by the load phase.
type loadRequest struct {
	p *te.Problem
	d *tensor.Dense
}

// maintShim gates a fleet replica behind a maintenance switch: scenario
// maintenance waves mark it down, it fails fast, and the fleet's health
// checks move it out of rotation until the wave releases it.
type maintShim struct {
	inner fleet.Replica
	mu    sync.Mutex
	down  bool
}

var errMaintenance = fmt.Errorf("replica down for planned maintenance")

func (m *maintShim) setDown(down bool) {
	m.mu.Lock()
	m.down = down
	m.mu.Unlock()
}

func (m *maintShim) isDown() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

func (m *maintShim) Serve(p *te.Problem, d *tensor.Dense) (resilience.Decision, error) {
	if m.isDown() {
		return resilience.Decision{}, errMaintenance
	}
	return m.inner.Serve(p, d)
}

func (m *maintShim) Reload(path string) error {
	if m.isDown() {
		return errMaintenance
	}
	return m.inner.Reload(path)
}

func (m *maintShim) Drain(ctx context.Context) error {
	if m.isDown() {
		return nil // already out of rotation
	}
	return m.inner.Drain(ctx)
}

// runScenarioDrill replays a correlated-disaster scenario against the live
// serving path: SRLG fiber cuts reshape the topology, flash crowds and
// sustained shifts bend the traffic, adversarial windows serve demands
// gradient-ascended against the trained weights (verify.AdversarialTM),
// and maintenance waves quarantine fleet replicas. The OOD guard's
// envelope is trained on the scenario's own benign series immediately
// before the drill, so every demotion in the summary is script-induced.
func runScenarioDrill(spec string, base *te.Problem, model *core.Model, guard *resilience.OODGuard,
	serve func(*te.Problem, *tensor.Dense) resilience.Decision,
	fl *fleet.Fleet, maint []*maintShim, replicas int, seed int64) error {
	var sc scenario.Scenario
	if spec == "auto" {
		sc = scenario.Auto(base, replicas, 30, seed)
	} else {
		var err error
		sc, err = scenario.ParseFile(spec)
		if err != nil {
			return err
		}
	}
	tcfg := traffic.DefaultSeriesConfig(float64(base.Graph.NumNodes) * 10)

	// The adversary attacks the weights actually serving; contexts are
	// cached per damage state (the drill is sequential).
	ctxs := map[uint64]*core.Context{}
	adversary := func(p *te.Problem, benign *tensor.Dense) (*tensor.Dense, error) {
		c, ok := ctxs[p.Fingerprint()]
		if !ok {
			c = model.Context(p)
			ctxs[p.Fingerprint()] = c
		}
		res, err := verify.AdversarialTM(p, benign, func(d *tensor.Dense) (*tensor.Dense, error) {
			return model.Splits(c, d), nil
		}, verify.AdversaryOptions{Steps: 8})
		if err != nil {
			return nil, err
		}
		return res.Demand, nil
	}
	pl, err := scenario.NewPlayer(sc, scenario.Config{Problem: base, Traffic: tcfg, Adversary: adversary})
	if err != nil {
		return err
	}

	// Arm the guard on exactly the benign series the player perturbs, so
	// quiet steps stay in-profile by construction.
	if sc.Total > 0 {
		tcfg.Total = sc.Total // mirror NewPlayer's override
	}
	profile := resilience.NewOODProfile()
	demands := make([]*tensor.Dense, 0, sc.Steps)
	for _, tm := range traffic.Series(base.Graph, sc.Steps, tcfg, sc.Seed) {
		demands = append(demands, traffic.DemandVector(tm, base.Tunnels.Flows))
	}
	if err := profile.ObserveSeries(base, demands); err != nil {
		return err
	}
	guard.SetProfile(profile)

	fmt.Printf("\nscenario %q: %d steps, seed %d\n", sc.Name, sc.Steps, sc.Seed)
	fmt.Println("  t  events                                    tier         HARP-MLU  optimal   NormMLU")
	var quiet, disaster []float64
	shed := 0
	for t := 0; t < pl.Steps(); t++ {
		step, err := pl.Step(t)
		if err != nil {
			return err
		}
		for _, r := range step.Quarantine {
			if r < len(maint) {
				maint[r].setDown(true)
			}
		}
		for _, r := range step.Release {
			if r < len(maint) {
				maint[r].setDown(false)
			}
		}
		if fl != nil && len(step.Quarantine)+len(step.Release) > 0 {
			// Let the health checker observe the new replica state so the
			// wave moves fleet membership, not just error rates.
			for i := 0; i < 4; i++ {
				fl.CheckHealth()
			}
		}
		events := strings.Join(step.Labels, ",")
		dec := serve(step.Problem, step.Demand)
		if dec.Splits == nil {
			shed++
			fmt.Printf("%4d  %-41s %-12s (no answer: %v)\n", t, events, dec.Tier, dec.Err)
			continue
		}
		// Rescale off dead tunnels — the controller-install convention —
		// before scoring, so cut-window MLU reflects installed routing.
		mlu := step.Problem.MLU(te.Rescale(step.Problem, dec.Splits), step.Demand)
		opt := lp.Solve(step.Problem, step.Demand).MLU
		norm := te.NormMLU(mlu, opt)
		if !step.Partitioned {
			if len(step.Labels) == 0 {
				quiet = append(quiet, norm)
			} else {
				disaster = append(disaster, norm)
			}
		}
		fmt.Printf("%4d  %-41s %-12s %8.4f  %8.4f  %7.3f\n", t, events, dec.Tier, mlu, opt, norm)
	}

	quietMean, disasterMean := mean(quiet), mean(disaster)
	degradation := 0.0
	if quietMean > 0 {
		degradation = disasterMean / quietMean
	}
	st := guard.Stats()
	total := pl.Steps()
	fmt.Printf("scenario summary: quiet NormMLU %.3f (n=%d), disaster NormMLU %.3f (n=%d), MLU degradation %.2fx, shed %d/%d (%.1f%%), ood suspect=%d hostile=%d demotions=%d cache-bypasses=%d\n",
		quietMean, len(quiet), disasterMean, len(disaster), degradation,
		shed, total, 100*float64(shed)/float64(total),
		st.Suspect, st.Hostile, st.SuspectDemotions+st.HostileDemotions, st.CacheBypasses)
	return nil
}

// mean returns the arithmetic mean, 0 for an empty sample.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// percentileRow formats p50/p99/p999 of a latency sample.
func percentileRow(lats []time.Duration) string {
	return fmt.Sprintf("p50=%v p99=%v p999=%v",
		percentile(lats, 0.50), percentile(lats, 0.99), percentile(lats, 0.999))
}

// percentile returns the q-quantile (nearest-rank on a sorted copy).
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return s[idx]
}

// printServingStats aggregates and prints split-cache and batch-collector
// effectiveness across the replicas, when either feature is enabled.
func printServingStats(servers []*resilience.Server, cacheEnt, batchMax int) {
	var cs resilience.CacheStats
	var bs resilience.BatchStats
	for _, s := range servers {
		st := s.Stats()
		cs.Hits += st.Cache.Hits
		cs.Misses += st.Cache.Misses
		cs.Evictions += st.Cache.Evictions
		cs.Size += st.Cache.Size
		bs.Dispatches += st.Batch.Dispatches
		bs.Batched += st.Batch.Batched
	}
	if cacheEnt > 0 {
		total := cs.Hits + cs.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(cs.Hits) / float64(total)
		}
		fmt.Printf("split cache: hits=%d misses=%d (hit-rate %.1f%%) evictions=%d entries=%d\n",
			cs.Hits, cs.Misses, 100*rate, cs.Evictions, cs.Size)
	}
	if batchMax > 1 {
		mean := 0.0
		if bs.Dispatches > 0 {
			mean = float64(bs.Batched) / float64(bs.Dispatches)
		}
		fmt.Printf("micro-batch: dispatches=%d requests=%d (mean batch %.2f)\n",
			bs.Dispatches, bs.Batched, mean)
	}
}

// runLoadPhase hammers the serving path with the pooled test requests for
// dur: closed-loop (workers issuing back-to-back) when rate is 0, or
// open-loop at a fixed arrival rate regardless of completions. It reports
// throughput, shed rate, and overall latency percentiles — the serving
// numbers the replay's sequential timeline cannot show.
func runLoadPhase(serve func(*te.Problem, *tensor.Dense) resilience.Decision, pool []loadRequest, dur time.Duration, rate float64, workers int) {
	var (
		mu   sync.Mutex
		lats []time.Duration
		shed int64
		next int64
	)
	issue := func(i int) {
		req := pool[i%len(pool)]
		t0 := time.Now()
		dec := serve(req.p, req.d)
		elapsed := time.Since(t0)
		mu.Lock()
		lats = append(lats, elapsed)
		if dec.Tier == resilience.TierShed {
			shed++
		}
		mu.Unlock()
	}

	start := time.Now()
	var wg sync.WaitGroup
	if rate > 0 {
		fmt.Printf("\nload phase: open-loop %.0f req/s for %v over %d snapshots\n", rate, dur, len(pool))
		interval := time.Duration(float64(time.Second) / rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		deadline := time.After(dur)
	open:
		for {
			select {
			case <-ticker.C:
				wg.Add(1)
				n := int(next)
				next++
				go func() { defer wg.Done(); issue(n) }()
			case <-deadline:
				break open
			}
		}
	} else {
		if workers < 1 {
			workers = 1
		}
		fmt.Printf("\nload phase: closed-loop %d workers for %v over %d snapshots\n", workers, dur, len(pool))
		stop := time.Now().Add(dur)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(stop); i += workers {
					issue(i)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := len(lats)
	if total == 0 {
		fmt.Println("load phase: no requests completed")
		return
	}
	fmt.Printf("load phase: %d requests in %v: throughput %.1f req/s, shed %d (%.2f%%)\n",
		total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), shed, 100*float64(shed)/float64(total))
	fmt.Printf("load latency: %s\n", percentileRow(lats))
}
