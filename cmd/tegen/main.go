// Command tegen generates and inspects the synthetic AnonNet-like dataset
// (see internal/dataset). It prints the §5.1 characterization — cluster
// structure, topology census, capacity variation — and can dump a compact
// JSON description of the series for external tooling.
//
// Usage:
//
//	tegen [-nodes N] [-snapshots N] [-seed N] [-k N] [-json out.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"harpte/internal/dataset"
	"harpte/internal/experiments"
	"harpte/internal/tensor"
	"harpte/internal/topology"
	"harpte/internal/traffic"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 24, "initial node count")
		snapshots = flag.Int("snapshots", 400, "snapshot count")
		seed      = flag.Int64("seed", 1, "generator seed")
		k         = flag.Int("k", 4, "tunnels per flow")
		jsonOut   = flag.String("json", "", "write a JSON summary to this file")
		dumpDir   = flag.String("dump", "", "write per-cluster topology and traffic files to this directory")
	)
	flag.Parse()

	cfg := dataset.DefaultConfig()
	cfg.Nodes = *nodes
	cfg.Snapshots = *snapshots
	cfg.Seed = *seed
	cfg.TunnelsPerFlow = *k
	ds := dataset.Generate(cfg)

	fmt.Printf("generated %d snapshots in %d clusters\n", len(ds.Snapshots), len(ds.Clusters))
	fmt.Print(experiments.Fig1(ds, 12).Table)
	fmt.Print(experiments.Fig3(ds).Table)
	fmt.Print(experiments.Fig15(ds).Table)

	if *jsonOut != "" {
		if err := writeJSON(ds, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "tegen:", err)
			os.Exit(1)
		}
		fmt.Printf("summary written to %s\n", *jsonOut)
	}
	if *dumpDir != "" {
		if err := dumpFiles(ds, *dumpDir); err != nil {
			fmt.Fprintln(os.Stderr, "tegen:", err)
			os.Exit(1)
		}
		fmt.Printf("cluster files written to %s\n", *dumpDir)
	}
}

// dumpFiles writes, per cluster, the base topology (cluster<N>.topo) and
// the traffic-matrix series of its snapshots (cluster<N>.tms) in the text
// formats of internal/topology and internal/traffic, so external tools and
// the harpcli -topofile/-tmfile flags can consume them.
func dumpFiles(ds *dataset.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, c := range ds.Clusters {
		tf, err := os.Create(filepath.Join(dir, fmt.Sprintf("cluster%02d.topo", c.ID)))
		if err != nil {
			return err
		}
		if err := topology.Write(tf, c.Base); err != nil {
			tf.Close()
			return err
		}
		tf.Close()

		var tms []*tensor.Dense
		for _, si := range c.Snapshots {
			tms = append(tms, ds.Snapshots[si].TM)
		}
		mf, err := os.Create(filepath.Join(dir, fmt.Sprintf("cluster%02d.tms", c.ID)))
		if err != nil {
			return err
		}
		if err := traffic.WriteTMs(mf, tms); err != nil {
			mf.Close()
			return err
		}
		mf.Close()
	}
	return nil
}

// summary is the JSON shape written by -json.
type summary struct {
	Snapshots int              `json:"snapshots"`
	Clusters  []clusterSummary `json:"clusters"`
}

type clusterSummary struct {
	ID        int `json:"id"`
	Snapshots int `json:"snapshots"`
	Nodes     int `json:"nodes"`
	Links     int `json:"links"`
	Flows     int `json:"flows"`
	Tunnels   int `json:"tunnels"`
}

func writeJSON(ds *dataset.Dataset, path string) error {
	s := summary{Snapshots: len(ds.Snapshots)}
	for _, c := range ds.Clusters {
		s.Clusters = append(s.Clusters, clusterSummary{
			ID:        c.ID,
			Snapshots: len(c.Snapshots),
			Nodes:     c.Base.NumNodes,
			Links:     c.Base.NumEdges() / 2,
			Flows:     len(c.Tunnels.Flows),
			Tunnels:   c.Tunnels.NumTunnels(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(&s)
}
